#include "qpath/flat_synopsis.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/logging.h"
#include "core/mathutil.h"
#include "core/strings.h"
#include "histogram/weighted_sap0.h"
#include "wavelet/synopsis.h"

namespace rangesyn {
namespace {

/// Replicates histogram.cc's CumulativeMass bit-for-bit from the flat
/// arrays: cum[k+1] = cum[k] + (double)width_k * values[k], widths derived
/// from the 1-based right endpoints.
std::vector<double> CumulativeMassFlat(const std::vector<int64_t>& ends,
                                       const std::vector<double>& values) {
  std::vector<double> cum(ends.size() + 1, 0.0);
  int64_t start = 1;
  for (size_t k = 0; k < ends.size(); ++k) {
    const int64_t width = ends[k] - start + 1;
    cum[k + 1] = cum[k] + static_cast<double>(width) * values[k];
    start = ends[k] + 1;
  }
  return cum;
}

/// Per-level Haar basis heights: heights[j] = 1/sqrt(padded >> j), the
/// same expression DescribeBasis evaluates per call, hoisted to one
/// evaluation per level (identical IEEE-754 result).
std::vector<double> LevelHeights(int64_t padded) {
  const int levels = FloorLog2(static_cast<uint64_t>(padded));
  std::vector<double> heights(static_cast<size_t>(levels) + 1);
  for (int j = 0; j <= levels; ++j) {
    heights[static_cast<size_t>(j)] =
        1.0 / std::sqrt(static_cast<double>(padded >> j));
  }
  return heights;
}

/// Grows the batch sort-key buffer. Cold: runs once per batch size
/// increase, never per query.
RANGESYN_COLD_PATH void EnsureScratch(FlatSynopsis::BatchScratch* scratch,
                                      size_t count) {
  if (scratch->keys.size() < count) scratch->keys.resize(count);
}

/// The sorted batch walk only pays once the per-bucket arrays stop being
/// cache-resident; below this many buckets every search already hits L1/
/// L2 and the O(n log n) sort is pure overhead.
constexpr int64_t kSortedWalkMinBuckets = 4096;

/// Quadratic model evaluation, matching Sap2Histogram::Model::At.
RANGESYN_HOT_PATH inline double ModelAt(const double* m, double x) {
  return m[0] + m[1] * x + m[2] * x * x;
}

constexpr int64_t kMaxFlatBuckets = int64_t{1} << 40;
constexpr int64_t kMaxFlatPadded = int64_t{1} << 40;

}  // namespace

void BuildEytzinger(std::span<const int64_t> ends, std::span<int64_t> eytz,
                    std::span<int64_t> rank) {
  RANGESYN_CHECK_EQ(eytz.size(), ends.size() + 1);
  RANGESYN_CHECK_EQ(rank.size(), ends.size() + 1);
  eytz[0] = 0;
  rank[0] = 0;
  // In-order traversal of the implicit complete tree visits the slots in
  // ascending key order; recursion depth is the tree height, O(log B).
  size_t next = 0;
  const size_t buckets = ends.size();
  const auto fill = [&](const auto& self, size_t k) -> void {
    if (k > buckets) return;
    self(self, 2 * k);
    eytz[k] = ends[next];
    rank[k] = static_cast<int64_t>(next);
    ++next;
    self(self, 2 * k + 1);
  };
  fill(fill, 1);
}

Result<std::shared_ptr<const FlatSynopsis>> FlatSynopsis::FromBuffers(
    FlatKind kind, uint8_t aux, int64_t n, int64_t num_buckets,
    int64_t padded_size, std::span<const int64_t> i64s,
    std::span<const double> f64s, std::shared_ptr<const void> backing) {
  // make_shared cannot reach the private constructor; the raw new is
  // immediately owned.
  std::shared_ptr<FlatSynopsis> s(new FlatSynopsis());  // lint: waive(LINT-004)
  s->kind_ = kind;
  s->aux_ = aux;
  s->n_ = n;
  s->num_buckets_ = num_buckets;
  s->padded_size_ = padded_size;
  s->backing_ = std::move(backing);
  s->i64_ = i64s;
  s->f64_ = f64s;
  RANGESYN_RETURN_IF_ERROR(s->InitAndValidate());
  return std::shared_ptr<const FlatSynopsis>(std::move(s));
}

Result<std::shared_ptr<const FlatSynopsis>> FlatSynopsis::FromBuffersCopied(
    FlatKind kind, uint8_t aux, int64_t n, int64_t num_buckets,
    int64_t padded_size, std::span<const int64_t> i64s,
    std::span<const double> f64s) {
  // make_shared cannot reach the private constructor; the raw new is
  // immediately owned.
  std::shared_ptr<FlatSynopsis> s(new FlatSynopsis());  // lint: waive(LINT-004)
  s->kind_ = kind;
  s->aux_ = aux;
  s->n_ = n;
  s->num_buckets_ = num_buckets;
  s->padded_size_ = padded_size;
  s->own_i64_.assign(i64s.begin(), i64s.end());
  s->own_f64_.assign(f64s.begin(), f64s.end());
  s->i64_ = s->own_i64_;
  s->f64_ = s->own_f64_;
  RANGESYN_RETURN_IF_ERROR(s->InitAndValidate());
  return std::shared_ptr<const FlatSynopsis>(std::move(s));
}

Status FlatSynopsis::InitAndValidate() {
  const int64_t buckets = num_buckets_;
  const bool histogram_kind =
      kind_ == FlatKind::kAvgHistogram || kind_ == FlatKind::kSap0 ||
      kind_ == FlatKind::kSap1 || kind_ == FlatKind::kSap2 ||
      kind_ == FlatKind::kWeightedSap0;
  if (n_ < 1) return InvalidArgumentError("FlatSynopsis: n must be >= 1");

  if (histogram_kind) {
    if (padded_size_ != 0) {
      return InvalidArgumentError(
          "FlatSynopsis: padded_size must be 0 for histogram kinds");
    }
    if (buckets < 1 || buckets > n_ || buckets > kMaxFlatBuckets) {
      return InvalidArgumentError("FlatSynopsis: bad bucket count");
    }
    if (static_cast<int64_t>(i64_.size()) != 3 * buckets + 2) {
      return InvalidArgumentError("FlatSynopsis: bad i64 section size");
    }
    int64_t expected_f64 = 0;
    switch (kind_) {
      case FlatKind::kAvgHistogram:
        if (aux_ > 2) {
          return InvalidArgumentError("FlatSynopsis: bad rounding tag");
        }
        expected_f64 = 2 * buckets + 1;
        break;
      case FlatKind::kSap0:
      case FlatKind::kWeightedSap0:
        if (aux_ != 0) return InvalidArgumentError("FlatSynopsis: bad aux");
        expected_f64 = 4 * buckets + 1;
        break;
      case FlatKind::kSap1:
        if (aux_ != 0) return InvalidArgumentError("FlatSynopsis: bad aux");
        expected_f64 = 6 * buckets + 1;
        break;
      case FlatKind::kSap2:
        if (aux_ != 0) return InvalidArgumentError("FlatSynopsis: bad aux");
        expected_f64 = 8 * buckets + 1;
        break;
      default:
        return InvalidArgumentError("FlatSynopsis: unreachable kind");
    }
    if (static_cast<int64_t>(f64_.size()) != expected_f64) {
      return InvalidArgumentError("FlatSynopsis: bad f64 section size");
    }

    // Boundaries must be strictly increasing 1-based endpoints covering
    // 1..n; the Eytzinger mirror and its ranks are recomputed and compared
    // wholesale, so a corrupted rank can never index out of bounds.
    const int64_t* ends = i64_.data();
    int64_t prev = 0;
    for (int64_t k = 0; k < buckets; ++k) {
      if (ends[k] <= prev || ends[k] > n_) {
        return InvalidArgumentError("FlatSynopsis: boundaries not sorted");
      }
      prev = ends[k];
    }
    if (ends[buckets - 1] != n_) {
      return InvalidArgumentError("FlatSynopsis: last boundary != n");
    }
    std::vector<int64_t> eytz(static_cast<size_t>(buckets) + 1);
    std::vector<int64_t> rank(static_cast<size_t>(buckets) + 1);
    BuildEytzinger(i64_.subspan(0, static_cast<size_t>(buckets)), eytz,
                   rank);
    if (std::memcmp(eytz.data(), i64_.data() + buckets,
                    eytz.size() * sizeof(int64_t)) != 0 ||
        std::memcmp(rank.data(), i64_.data() + 2 * buckets + 1,
                    rank.size() * sizeof(int64_t)) != 0) {
      return InvalidArgumentError(
          "FlatSynopsis: Eytzinger section disagrees with boundaries");
    }

    ends_ = i64_.data();
    eytz_ends_ = i64_.data() + buckets;
    eytz_rank_ = i64_.data() + 2 * buckets + 1;
    cum_ = f64_.data();
    const double* after_cum = f64_.data() + buckets + 1;
    switch (kind_) {
      case FlatKind::kAvgHistogram:
        f_a_ = after_cum;  // stored values
        avg_ = after_cum;
        break;
      case FlatKind::kSap0:
      case FlatKind::kWeightedSap0:
        f_a_ = after_cum;                // suffix values
        f_b_ = after_cum + buckets;      // prefix values
        avg_ = after_cum + 2 * buckets;  // bucket averages
        break;
      case FlatKind::kSap1:
        f_a_ = after_cum;                // suffix slopes
        f_b_ = after_cum + buckets;      // suffix intercepts
        f_c_ = after_cum + 2 * buckets;  // prefix slopes
        f_d_ = after_cum + 3 * buckets;  // prefix intercepts
        avg_ = after_cum + 4 * buckets;
        break;
      case FlatKind::kSap2:
        f_a_ = after_cum;                    // suffix models, 3 per bucket
        f_b_ = after_cum + 3 * buckets;      // prefix models, 3 per bucket
        avg_ = after_cum + 6 * buckets;
        break;
      default:
        return InvalidArgumentError("FlatSynopsis: unreachable kind");
    }
    BuildBucketHint();
    return OkStatus();
  }

  if (kind_ == FlatKind::kNaive) {
    if (buckets != 0 || padded_size_ != 0 || aux_ != 0 || !i64_.empty() ||
        f64_.size() != 1) {
      return InvalidArgumentError("FlatSynopsis: bad naive layout");
    }
    avg_ = f64_.data();
    return OkStatus();
  }

  if (kind_ == FlatKind::kWavelet) {
    if (buckets != 0 || !i64_.empty()) {
      return InvalidArgumentError("FlatSynopsis: bad wavelet layout");
    }
    if (aux_ > 1) return InvalidArgumentError("FlatSynopsis: bad domain");
    if (padded_size_ < 1 || padded_size_ > kMaxFlatPadded ||
        !IsPowerOfTwo(static_cast<uint64_t>(padded_size_))) {
      return InvalidArgumentError("FlatSynopsis: bad padded_size");
    }
    const bool data_domain = aux_ == 0;
    if ((data_domain && n_ > padded_size_) ||
        (!data_domain && n_ + 1 > padded_size_)) {
      return InvalidArgumentError("FlatSynopsis: n exceeds padded_size");
    }
    const int64_t levels = FloorLog2(static_cast<uint64_t>(padded_size_));
    if (static_cast<int64_t>(f64_.size()) != levels + 1 + padded_size_) {
      return InvalidArgumentError("FlatSynopsis: bad f64 section size");
    }
    // The per-level heights are a pure function of padded_size; recompute
    // and compare bitwise so a damaged file cannot skew every answer.
    const std::vector<double> expected = LevelHeights(padded_size_);
    if (std::memcmp(expected.data(), f64_.data(),
                    expected.size() * sizeof(double)) != 0) {
      return InvalidArgumentError(
          "FlatSynopsis: height table disagrees with padded_size");
    }
    heights_ = f64_.data();
    table_ = f64_.data() + levels + 1;
    return OkStatus();
  }

  return InvalidArgumentError("FlatSynopsis: unknown kind tag");
}

Result<std::shared_ptr<const FlatSynopsis>> FlatSynopsis::Compile(
    const RangeEstimator& estimator) {
  if (const auto* h = dynamic_cast<const AvgHistogram*>(&estimator)) {
    const std::vector<int64_t>& ends = h->partition().ends();
    const int64_t buckets = h->partition().num_buckets();
    std::vector<int64_t> i64s(static_cast<size_t>(3 * buckets + 2));
    std::copy(ends.begin(), ends.end(), i64s.begin());
    BuildEytzinger(std::span<const int64_t>(ends),
                   std::span<int64_t>(i64s).subspan(
                       static_cast<size_t>(buckets),
                       static_cast<size_t>(buckets) + 1),
                   std::span<int64_t>(i64s).subspan(
                       static_cast<size_t>(2 * buckets + 1)));
    std::vector<double> f64s = CumulativeMassFlat(ends, h->values());
    f64s.insert(f64s.end(), h->values().begin(), h->values().end());
    return FromBuffersCopied(FlatKind::kAvgHistogram,
                             static_cast<uint8_t>(h->rounding()),
                             h->domain_size(), buckets, 0, i64s, f64s);
  }
  const auto append = [](std::vector<double>* dst,
                         const std::vector<double>& src) {
    dst->insert(dst->end(), src.begin(), src.end());
  };
  if (const auto* h = dynamic_cast<const Sap0Histogram*>(&estimator)) {
    const std::vector<int64_t>& ends = h->partition().ends();
    const int64_t buckets = h->partition().num_buckets();
    std::vector<int64_t> i64s(static_cast<size_t>(3 * buckets + 2));
    std::copy(ends.begin(), ends.end(), i64s.begin());
    BuildEytzinger(std::span<const int64_t>(ends),
                   std::span<int64_t>(i64s).subspan(
                       static_cast<size_t>(buckets),
                       static_cast<size_t>(buckets) + 1),
                   std::span<int64_t>(i64s).subspan(
                       static_cast<size_t>(2 * buckets + 1)));
    std::vector<double> f64s = CumulativeMassFlat(ends, h->averages());
    append(&f64s, h->suffix_values());
    append(&f64s, h->prefix_values());
    append(&f64s, h->averages());
    return FromBuffersCopied(FlatKind::kSap0, 0, h->domain_size(), buckets,
                             0, i64s, f64s);
  }
  if (const auto* h =
          dynamic_cast<const WeightedSap0Histogram*>(&estimator)) {
    const std::vector<int64_t>& ends = h->partition().ends();
    const int64_t buckets = h->partition().num_buckets();
    std::vector<int64_t> i64s(static_cast<size_t>(3 * buckets + 2));
    std::copy(ends.begin(), ends.end(), i64s.begin());
    BuildEytzinger(std::span<const int64_t>(ends),
                   std::span<int64_t>(i64s).subspan(
                       static_cast<size_t>(buckets),
                       static_cast<size_t>(buckets) + 1),
                   std::span<int64_t>(i64s).subspan(
                       static_cast<size_t>(2 * buckets + 1)));
    std::vector<double> f64s = CumulativeMassFlat(ends, h->averages());
    append(&f64s, h->suffix_values());
    append(&f64s, h->prefix_values());
    append(&f64s, h->averages());
    return FromBuffersCopied(FlatKind::kWeightedSap0, 0, h->domain_size(),
                             buckets, 0, i64s, f64s);
  }
  if (const auto* h = dynamic_cast<const Sap1Histogram*>(&estimator)) {
    const std::vector<int64_t>& ends = h->partition().ends();
    const int64_t buckets = h->partition().num_buckets();
    std::vector<int64_t> i64s(static_cast<size_t>(3 * buckets + 2));
    std::copy(ends.begin(), ends.end(), i64s.begin());
    BuildEytzinger(std::span<const int64_t>(ends),
                   std::span<int64_t>(i64s).subspan(
                       static_cast<size_t>(buckets),
                       static_cast<size_t>(buckets) + 1),
                   std::span<int64_t>(i64s).subspan(
                       static_cast<size_t>(2 * buckets + 1)));
    std::vector<double> f64s = CumulativeMassFlat(ends, h->averages());
    append(&f64s, h->suffix_slopes());
    append(&f64s, h->suffix_intercepts());
    append(&f64s, h->prefix_slopes());
    append(&f64s, h->prefix_intercepts());
    append(&f64s, h->averages());
    return FromBuffersCopied(FlatKind::kSap1, 0, h->domain_size(), buckets,
                             0, i64s, f64s);
  }
  if (const auto* h = dynamic_cast<const Sap2Histogram*>(&estimator)) {
    const std::vector<int64_t>& ends = h->partition().ends();
    const int64_t buckets = h->partition().num_buckets();
    std::vector<int64_t> i64s(static_cast<size_t>(3 * buckets + 2));
    std::copy(ends.begin(), ends.end(), i64s.begin());
    BuildEytzinger(std::span<const int64_t>(ends),
                   std::span<int64_t>(i64s).subspan(
                       static_cast<size_t>(buckets),
                       static_cast<size_t>(buckets) + 1),
                   std::span<int64_t>(i64s).subspan(
                       static_cast<size_t>(2 * buckets + 1)));
    std::vector<double> f64s = CumulativeMassFlat(ends, h->averages());
    for (const Sap2Histogram::Model& m : h->suffix_models()) {
      f64s.push_back(m.c0);
      f64s.push_back(m.c1);
      f64s.push_back(m.c2);
    }
    for (const Sap2Histogram::Model& m : h->prefix_models()) {
      f64s.push_back(m.c0);
      f64s.push_back(m.c1);
      f64s.push_back(m.c2);
    }
    append(&f64s, h->averages());
    return FromBuffersCopied(FlatKind::kSap2, 0, h->domain_size(), buckets,
                             0, i64s, f64s);
  }
  if (const auto* e = dynamic_cast<const NaiveEstimator*>(&estimator)) {
    const double avg = e->average();
    return FromBuffersCopied(FlatKind::kNaive, 0, e->domain_size(), 0, 0,
                             std::span<const int64_t>(),
                             std::span<const double>(&avg, 1));
  }
  if (const auto* w = dynamic_cast<const WaveletSynopsis*>(&estimator)) {
    const int64_t padded = w->padded_size();
    std::vector<double> f64s = LevelHeights(padded);
    f64s.resize(f64s.size() + static_cast<size_t>(padded), 0.0);
    const size_t table_off =
        f64s.size() - static_cast<size_t>(padded);
    for (const WaveletCoefficient& c : w->coefficients()) {
      f64s[table_off + static_cast<size_t>(c.index)] = c.value;
    }
    const uint8_t aux = w->domain() == WaveletDomain::kData ? 0 : 1;
    return FromBuffersCopied(FlatKind::kWavelet, aux, w->domain_size(), 0,
                             padded, std::span<const int64_t>(), f64s);
  }
  return UnimplementedError(
      StrCat("FlatSynopsis: no flat compilation for estimator '",
             estimator.Name(), "'"));
}

std::string FlatSynopsis::Name() const {
  switch (kind_) {
    case FlatKind::kAvgHistogram:
      return "FLAT-AVG";
    case FlatKind::kSap0:
      return "FLAT-SAP0";
    case FlatKind::kSap1:
      return "FLAT-SAP1";
    case FlatKind::kSap2:
      return "FLAT-SAP2";
    case FlatKind::kWeightedSap0:
      return "FLAT-W-SAP0";
    case FlatKind::kNaive:
      return "FLAT-NAIVE";
    case FlatKind::kWavelet:
      return "FLAT-WAVELET";
  }
  return "FLAT-?";
}

int64_t FlatSynopsis::BucketOfEytzinger(int64_t i) const {
  // Branch-lean Eytzinger lower_bound: descend the implicit tree, then
  // back out to the last left turn; the stored rank maps the BFS slot to
  // the sorted bucket index Partition::BucketOf would return.
  uint64_t k = 1;
  const uint64_t buckets = static_cast<uint64_t>(num_buckets_);
  while (k <= buckets) {
    k = 2 * k + static_cast<uint64_t>(eytz_ends_[k] < i);
  }
  k >>= std::countr_one(k) + 1;
  RANGESYN_DCHECK(k != 0);
  return eytz_rank_[k];
}

void FlatSynopsis::BuildBucketHint() {
  // uint32 bucket indices cover any realistic histogram; past that the
  // Eytzinger descent serves alone.
  if (num_buckets_ >= (int64_t{1} << 32)) return;
  constexpr int kHintBits = 12;  // <= 4096 entries, 16 KiB: L2-resident
  const int n_bits =
      64 - static_cast<int>(std::countl_zero(static_cast<uint64_t>(n_)));
  hint_shift_ = std::max(0, n_bits - kHintBits);
  const size_t blocks = static_cast<size_t>(n_ >> hint_shift_) + 1;
  hint_.resize(blocks);
  for (size_t blk = 0; blk < blocks; ++blk) {
    const int64_t first = std::max<int64_t>(
        1, static_cast<int64_t>(blk) << hint_shift_);
    hint_[blk] = static_cast<uint32_t>(
        BucketOfEytzinger(std::min(first, n_)));
  }
}

int64_t FlatSynopsis::BucketOfFlat(int64_t i) const {
  if (hint_.empty()) return BucketOfEytzinger(i);
  // One cache-resident load gives the bucket of the block's first
  // position — a lower bound on the answer — then a forward scan over
  // the (strictly increasing) boundaries the block spans finishes the
  // lower_bound. Scan length is the number of buckets starting inside
  // one block: ~B / 4096 on average, 0 for most queries.
  int64_t k = hint_[i >> hint_shift_];
  while (ends_[k] < i) ++k;
  return k;
}

double FlatSynopsis::EstimateAvg(int64_t a, int64_t b) const {
  const int64_t ka = BucketOfFlat(a);
  const int64_t kb = BucketOfFlat(b);
  const double* values = f_a_;
  const auto rounding = static_cast<PieceRounding>(aux_);
  if (ka == kb) {
    const double whole = static_cast<double>(b - a + 1) * values[ka];
    if (rounding == PieceRounding::kNone) return whole;
    return static_cast<double>(RoundHalfToEven(whole));
  }
  double left = static_cast<double>(BucketEnd(ka) - a + 1) * values[ka];
  double right = static_cast<double>(b - BucketStart(kb) + 1) * values[kb];
  if (rounding == PieceRounding::kPerPiece) {
    left = static_cast<double>(RoundHalfToEven(left));
    right = static_cast<double>(RoundHalfToEven(right));
  }
  const double middle = cum_[kb] - cum_[ka + 1];
  const double total = left + middle + right;
  if (rounding == PieceRounding::kWhole) {
    return static_cast<double>(RoundHalfToEven(total));
  }
  return total;
}

double FlatSynopsis::EstimateSap0(int64_t a, int64_t b) const {
  const int64_t ka = BucketOfFlat(a);
  const int64_t kb = BucketOfFlat(b);
  if (ka == kb) {
    return static_cast<double>(b - a + 1) * avg_[ka];
  }
  return f_a_[ka] + (cum_[kb] - cum_[ka + 1]) + f_b_[kb];
}

double FlatSynopsis::EstimateSap1(int64_t a, int64_t b) const {
  const int64_t ka = BucketOfFlat(a);
  const int64_t kb = BucketOfFlat(b);
  if (ka == kb) {
    return static_cast<double>(b - a + 1) * avg_[ka];
  }
  const double left_len = static_cast<double>(BucketEnd(ka) - a + 1);
  const double right_len = static_cast<double>(b - BucketStart(kb) + 1);
  return left_len * f_a_[ka] + f_b_[ka] + right_len * f_c_[kb] + f_d_[kb] +
         (cum_[kb] - cum_[ka + 1]);
}

double FlatSynopsis::EstimateSap2(int64_t a, int64_t b) const {
  const int64_t ka = BucketOfFlat(a);
  const int64_t kb = BucketOfFlat(b);
  if (ka == kb) {
    return static_cast<double>(b - a + 1) * avg_[ka];
  }
  const double left_len = static_cast<double>(BucketEnd(ka) - a + 1);
  const double right_len = static_cast<double>(b - BucketStart(kb) + 1);
  return ModelAt(f_a_ + 3 * ka, left_len) +
         ModelAt(f_b_ + 3 * kb, right_len) + (cum_[kb] - cum_[ka + 1]);
}

double FlatSynopsis::WaveReconstructAt(int64_t t) const {
  RANGESYN_DCHECK(t >= 0 && t < padded_size_);
  // Mirrors WaveletSynopsis::ReconstructAt with the hash probes replaced
  // by dense-table loads. Absent coefficients hold 0.0, and adding a
  // 0.0 * basis term never changes the running IEEE-754 sum the legacy
  // skip-if-absent walk produces, so the result is bit-identical.
  // level_size is a power of two at every level, so the legacy walk's
  // divisions and multiplications are exact shifts here (identical
  // integer results, no FP involvement).
  double v = 0.0;
  v += table_[0] * heights_[0];  // DC: BasisValue is the height
  const int64_t levels = FloorLog2(static_cast<uint64_t>(padded_size_));
  int64_t j = 0;
  for (int64_t shift = levels; shift > 0; --shift, ++j) {
    const int64_t base = padded_size_ >> shift;   // 1, 2, 4, ...
    const int64_t k = base + (t >> shift);
    const int64_t start = (k - base) << shift;
    const int64_t mid = start + (int64_t{1} << (shift - 1));
    const double h = heights_[j];
    v += table_[k] * (t < mid ? h : -h);
  }
  return v;
}

double FlatSynopsis::WaveReconstructRangeSum(int64_t lo, int64_t hi) const {
  RANGESYN_DCHECK(lo >= 0 && lo <= hi && hi < padded_size_);
  // Mirrors WaveletSynopsis::ReconstructRangeSum (the ForEachAncestorPair
  // walk) with BasisRangeSum inlined; visit order and every arithmetic
  // step match the legacy path exactly.
  // As in WaveReconstructAt, every division/multiplication by level_size
  // is an exact shift.
  double v = 0.0;
  v += table_[0] *
       (static_cast<double>(hi - lo + 1) * heights_[0]);  // DC term
  const int64_t levels = FloorLog2(static_cast<uint64_t>(padded_size_));
  int64_t j = 0;
  for (int64_t shift = levels; shift > 0; --shift, ++j) {
    const int64_t base = padded_size_ >> shift;
    const int64_t level_size = int64_t{1} << shift;
    const int64_t a_lo = base + (lo >> shift);
    const int64_t a_hi = base + (hi >> shift);
    const double h = heights_[j];
    {
      const int64_t start = (a_lo - base) << shift;
      const int64_t s_lo = std::max(lo, start);
      const int64_t s_hi = std::min(hi, start + level_size - 1);
      const int64_t mid = start + (level_size >> 1);
      const int64_t plus =
          std::max<int64_t>(0, std::min(s_hi, mid - 1) - s_lo + 1);
      const int64_t minus =
          std::max<int64_t>(0, s_hi - std::max(s_lo, mid) + 1);
      v += table_[a_lo] * (static_cast<double>(plus - minus) * h);
    }
    if (a_hi != a_lo) {
      const int64_t start = (a_hi - base) << shift;
      const int64_t s_lo = std::max(lo, start);
      const int64_t s_hi = std::min(hi, start + level_size - 1);
      const int64_t mid = start + (level_size >> 1);
      const int64_t plus =
          std::max<int64_t>(0, std::min(s_hi, mid - 1) - s_lo + 1);
      const int64_t minus =
          std::max<int64_t>(0, s_hi - std::max(s_lo, mid) + 1);
      v += table_[a_hi] * (static_cast<double>(plus - minus) * h);
    }
  }
  return v;
}

double FlatSynopsis::EstimateWavelet(int64_t a, int64_t b) const {
  if (aux_ == 0) {  // data domain
    return WaveReconstructRangeSum(a - 1, b - 1);
  }
  // Prefix domain: s[a,b] = P[b] - P[a-1]; P[t] sits at slot t.
  return WaveReconstructAt(b) - WaveReconstructAt(a - 1);
}

double FlatSynopsis::EstimateOne(int64_t a, int64_t b) const {
  RANGESYN_DCHECK(a >= 1 && a <= b && b <= n_);
  switch (kind_) {
    case FlatKind::kAvgHistogram:
      return EstimateAvg(a, b);
    case FlatKind::kSap0:
    case FlatKind::kWeightedSap0:
      return EstimateSap0(a, b);
    case FlatKind::kSap1:
      return EstimateSap1(a, b);
    case FlatKind::kSap2:
      return EstimateSap2(a, b);
    case FlatKind::kNaive:
      return static_cast<double>(b - a + 1) * avg_[0];
    case FlatKind::kWavelet:
      return EstimateWavelet(a, b);
  }
  RANGESYN_DCHECK(false);
  return 0.0;
}

Status FlatSynopsis::EstimateMany(std::span<const FlatQuery> queries,
                                  std::span<double> out,
                                  BatchScratch* scratch) const {
  if (out.size() != queries.size()) {
    return InvalidArgumentError(
        "FlatSynopsis::EstimateMany: out.size() != queries.size()");
  }
  if (queries.size() >
      static_cast<size_t>(std::numeric_limits<uint32_t>::max())) {
    return InvalidArgumentError(
        "FlatSynopsis::EstimateMany: batch exceeds 2^32 queries");
  }
  if (queries.empty()) return OkStatus();
  const uint32_t count = static_cast<uint32_t>(queries.size());
  // The naive/wavelet kinds serve from one dense table that reordering
  // cannot make more resident, and small bucket synopses search L1/L2
  // lines already; only large histograms buy locality with a sort. The
  // packed-key fast path needs a to fit 31 bits, which every histogram
  // this size satisfies long before n approaches 2^31.
  const bool sorted_walk = ends_ != nullptr &&
                           num_buckets_ >= kSortedWalkMinBuckets &&
                           n_ < (int64_t{1} << 31);
  if (!sorted_walk) {
    for (uint32_t i = 0; i < count; ++i) {
      out[i] = EstimateOne(queries[i].a, queries[i].b);
    }
    return OkStatus();
  }
  EnsureScratch(scratch, queries.size());
  uint64_t* keys = scratch->keys.data();
  for (uint32_t i = 0; i < count; ++i) {
    keys[i] = (static_cast<uint64_t>(queries[i].a) << 32) | i;
  }
  // Walk queries in ascending-a order: consecutive queries revisit the
  // same buckets / search paths, so the boundary lines stay cache- and
  // branch-predictor-resident. Each answer is written back at its
  // original slot; the per-query arithmetic is order-independent, so the
  // batch is bit-identical to single calls.
  std::sort(keys, keys + count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t idx = static_cast<uint32_t>(keys[i]);
    out[idx] = EstimateOne(queries[idx].a, queries[idx].b);
  }
  return OkStatus();
}

Status FlatSynopsis::EstimateMany(std::span<const FlatQuery> queries,
                                  std::span<double> out) const {
  BatchScratch scratch;
  return EstimateMany(queries, out, &scratch);
}

}  // namespace rangesyn
