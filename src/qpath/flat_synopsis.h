#ifndef RANGESYN_QPATH_FLAT_SYNOPSIS_H_
#define RANGESYN_QPATH_FLAT_SYNOPSIS_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/estimator.h"
#include "core/result.h"
#include "histogram/histogram.h"

namespace rangesyn {

/// Kind tag of a flat-compiled synopsis. Values match the serializer's
/// kind tags (engine/serialize.cc) so the two on-disk formats agree on
/// what each number means.
enum class FlatKind : uint8_t {
  kAvgHistogram = 1,
  kSap0 = 2,
  kSap1 = 3,
  kNaive = 4,
  kWavelet = 5,
  kSap2 = 6,
  kWeightedSap0 = 7,
};

/// One range query 1 <= a <= b <= n, for the batched entry point.
struct FlatQuery {
  int64_t a = 0;
  int64_t b = 0;
};

/// Immutable structure-of-arrays compilation of a RangeEstimator for the
/// serving hot path (DESIGN.md §11). All state lives in exactly two
/// contiguous buffers — one of int64 words, one of doubles — so a
/// FlatSynopsis can be backed either by heap vectors or by an mmap'd file
/// with identical query behavior.
///
/// Layouts (B = num_buckets, P = padded_size, L = log2(P)):
///
///   histogram kinds — i64 buffer:
///     [0, B)         ends        sorted 1-based bucket right endpoints
///     [B, 2B+1)      eytz_ends   the ends in Eytzinger (BFS heap) order,
///                                1-indexed; slot 0 is an unused 0 pad
///     [2B+1, 3B+2)   eytz_rank   sorted rank of each eytz_ends slot
///
///   f64 buffer by kind (cum = cumulative bucket mass, B+1 entries):
///     kAvgHistogram   cum | values[B]                      aux = rounding
///     kSap0           cum | suff[B] | pref[B] | avg[B]
///     kWeightedSap0   cum | suff[B] | pref[B] | avg[B]
///     kSap1           cum | ss[B] | si[B] | ps[B] | pi[B] | avg[B]
///     kSap2           cum | suff c0,c1,c2 ×B | pref c0,c1,c2 ×B | avg[B]
///     kNaive          avg[1]                   (no i64 words, B = 0)
///     kWavelet        heights[L+1] | table[P]  aux = domain, no i64 words
///
/// The wavelet table is the *dense* coefficient vector (absent
/// coefficients are 0.0), indexed by the Haar layout position, so the
/// per-ancestor unordered_map probes of the legacy path become direct
/// loads. Summation order matches the legacy walk exactly; adding a
/// 0.0-weighted term cannot change any IEEE-754 sum that the legacy
/// skip-if-absent walk produces, so results are bit-identical.
///
/// Bucket search uses the Eytzinger layout: the branch-free descent
/// touches one cache line per level and returns the same lower_bound
/// index Partition::BucketOf computes, via the stored ranks.
///
/// Lifetime contract (machine-checked, DESIGN.md §6.4): FlatSynopsis is
/// a RANGESYN_OWNER_TYPE — it owns (or keeps alive via `backing_`) every
/// byte its spans and section pointers reference, so caching them in its
/// own members is sanctioned. The factories are RANGESYN_LENDS_VIEW:
/// the shared_ptr they hand out is the keep-alive handle, and callers
/// must hold it for as long as any span obtained from the synopsis.
class RANGESYN_OWNER_TYPE FlatSynopsis {
 public:
  /// Compiles a built estimator into its flat form. Supported concrete
  /// types: AvgHistogram, Sap0Histogram, Sap1Histogram, Sap2Histogram,
  /// WeightedSap0Histogram, NaiveEstimator, WaveletSynopsis.
  RANGESYN_LENDS_VIEW static Result<std::shared_ptr<const FlatSynopsis>>
  Compile(const RangeEstimator& estimator);

  /// Assembles a view over externally owned buffers (the mmap read path).
  /// `backing` keeps the storage alive for the synopsis' lifetime. The
  /// buffers are structurally validated (counts, monotone ends, Eytzinger
  /// permutation recomputed and compared) so a malformed file can never
  /// cause an out-of-bounds query-time access.
  RANGESYN_LENDS_VIEW static Result<std::shared_ptr<const FlatSynopsis>>
  FromBuffers(
      FlatKind kind, uint8_t aux, int64_t n, int64_t num_buckets,
      int64_t padded_size, std::span<const int64_t> i64s,
      std::span<const double> f64s, std::shared_ptr<const void> backing);

  /// As FromBuffers, but copies the buffers into owned heap vectors.
  RANGESYN_LENDS_VIEW static Result<std::shared_ptr<const FlatSynopsis>>
  FromBuffersCopied(
      FlatKind kind, uint8_t aux, int64_t n, int64_t num_buckets,
      int64_t padded_size, std::span<const int64_t> i64s,
      std::span<const double> f64s);

  /// Answer for one range query; bit-identical to the source estimator's
  /// EstimateRange. Requires 1 <= a <= b <= n.
  RANGESYN_HOT_PATH double EstimateOne(int64_t a, int64_t b) const;

  /// Reusable batch scratch; EstimateMany grows it on demand (outside the
  /// hot path) and reuses it allocation-free afterwards.
  struct BatchScratch {
    /// Packed (a << 32 | slot) sort keys for the sorted walk.
    std::vector<uint64_t> keys;
  };

  /// Batched queries: answers queries[i] into out[i]. When the synopsis'
  /// bucket arrays outgrow cache, queries are walked in ascending-a order
  /// internally so consecutive searches revisit resident lines; smaller
  /// synopses (and the single-table naive/wavelet kinds) are answered in
  /// input order, where a sort costs more than the locality it buys.
  /// Either way each answer is the same double EstimateOne returns, so a
  /// batch is bit-identical to the matching single-query calls in any
  /// order. `out.size()` must equal `queries.size()`.
  RANGESYN_HOT_PATH Status EstimateMany(std::span<const FlatQuery> queries,
                                        std::span<double> out,
                                        BatchScratch* scratch) const;

  /// Convenience overload with a throwaway scratch.
  Status EstimateMany(std::span<const FlatQuery> queries,
                      std::span<double> out) const;

  FlatKind kind() const { return kind_; }
  uint8_t aux() const { return aux_; }
  int64_t n() const { return n_; }
  int64_t num_buckets() const { return num_buckets_; }
  int64_t padded_size() const { return padded_size_; }
  /// The raw buffers; valid only while this synopsis (or a shared_ptr
  /// to it) is alive.
  RANGESYN_LENDS_VIEW std::span<const int64_t> i64s() const { return i64_; }
  RANGESYN_LENDS_VIEW std::span<const double> f64s() const { return f64_; }

  /// "FLAT-<kind>", for reports.
  std::string Name() const;

 private:
  FlatSynopsis() = default;

  /// Validates the layout described in the class comment and wires the
  /// per-kind raw pointers. Called once per construction; cold.
  RANGESYN_COLD_PATH Status InitAndValidate();

  RANGESYN_HOT_PATH int64_t BucketOfFlat(int64_t i) const;
  RANGESYN_HOT_PATH int64_t BucketOfEytzinger(int64_t i) const;
  RANGESYN_COLD_PATH void BuildBucketHint();
  RANGESYN_HOT_PATH int64_t BucketStart(int64_t k) const {
    return k == 0 ? 1 : ends_[k - 1] + 1;
  }
  RANGESYN_HOT_PATH int64_t BucketEnd(int64_t k) const { return ends_[k]; }

  RANGESYN_HOT_PATH double EstimateAvg(int64_t a, int64_t b) const;
  RANGESYN_HOT_PATH double EstimateSap0(int64_t a, int64_t b) const;
  RANGESYN_HOT_PATH double EstimateSap1(int64_t a, int64_t b) const;
  RANGESYN_HOT_PATH double EstimateSap2(int64_t a, int64_t b) const;
  RANGESYN_HOT_PATH double EstimateWavelet(int64_t a, int64_t b) const;
  RANGESYN_HOT_PATH double WaveReconstructAt(int64_t t) const;
  RANGESYN_HOT_PATH double WaveReconstructRangeSum(int64_t lo,
                                                   int64_t hi) const;

  // Owned backing (heap mode) or a keep-alive handle (mmap mode); the
  // spans below point into whichever is active.
  std::vector<int64_t> own_i64_;
  std::vector<double> own_f64_;
  std::shared_ptr<const void> backing_;
  std::span<const int64_t> i64_;
  std::span<const double> f64_;

  FlatKind kind_ = FlatKind::kNaive;
  uint8_t aux_ = 0;
  int64_t n_ = 0;
  int64_t num_buckets_ = 0;
  int64_t padded_size_ = 0;

  // Derived section pointers (into i64_/f64_), set by InitAndValidate.
  const int64_t* ends_ = nullptr;
  const int64_t* eytz_ends_ = nullptr;
  const int64_t* eytz_rank_ = nullptr;
  const double* cum_ = nullptr;
  const double* f_a_ = nullptr;  // values / suff / ss / suff models
  const double* f_b_ = nullptr;  // pref / si / pref models
  const double* f_c_ = nullptr;  // ps
  const double* f_d_ = nullptr;  // pi
  const double* avg_ = nullptr;  // bucket averages (or the naive average)
  const double* heights_ = nullptr;  // wavelet per-level basis heights
  const double* table_ = nullptr;    // dense Haar coefficient table

  // Bucket-search accelerator, derived at construction (not part of the
  // on-disk format): hint_[i >> hint_shift_] is the bucket of the first
  // domain position in that block, so a search is one table load plus a
  // short forward scan over the boundaries the block spans. The table is
  // capped at 4K entries to stay cache-resident; the Eytzinger descent
  // remains the fallback for the (theoretical) >= 2^32-bucket case.
  std::vector<uint32_t> hint_;
  int hint_shift_ = 0;
};

/// RangeEstimator adapter over a flat view, so the evaluation and
/// reporting stack (AllRangesStats, sweeps) can score the flat path with
/// the same code it uses for legacy estimators.
class FlatRangeEstimator : public RangeEstimator {
 public:
  explicit FlatRangeEstimator(std::shared_ptr<const FlatSynopsis> flat)
      : flat_(std::move(flat)) {}

  RANGESYN_HOT_PATH double EstimateRange(int64_t a, int64_t b)
      const override {
    return flat_->EstimateOne(a, b);
  }
  int64_t StorageWords() const override {
    return static_cast<int64_t>(flat_->i64s().size() + flat_->f64s().size());
  }
  int64_t domain_size() const override { return flat_->n(); }
  std::string Name() const override { return flat_->Name(); }

  const std::shared_ptr<const FlatSynopsis>& flat() const { return flat_; }

 private:
  std::shared_ptr<const FlatSynopsis> flat_;
};

/// Fills `eytz`/`rank` (both `ends.size() + 1` long, slot 0 zeroed) with
/// the Eytzinger permutation of `ends` and each slot's sorted rank.
/// Exposed for the file reader's structural validation.
void BuildEytzinger(std::span<const int64_t> ends, std::span<int64_t> eytz,
                    std::span<int64_t> rank);

}  // namespace rangesyn

#endif  // RANGESYN_QPATH_FLAT_SYNOPSIS_H_
