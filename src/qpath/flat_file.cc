#include "qpath/flat_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

#include "core/crc32c.h"
#include "core/fs.h"
#include "core/strings.h"

namespace rangesyn {
namespace {

constexpr uint32_t kFlatMagic = 0x31465352;  // "RSF1" little-endian
constexpr uint8_t kFlatVersion = 1;
constexpr size_t kHeaderBytes = 64;
constexpr size_t kTrailerBytes = sizeof(uint32_t);

struct FlatHeader {
  uint32_t magic = 0;
  uint8_t version = 0;
  uint8_t kind = 0;
  uint8_t aux = 0;
  uint8_t zero = 0;
  int64_t n = 0;
  int64_t num_buckets = 0;
  int64_t padded_size = 0;
  int64_t i64_count = 0;
  int64_t f64_count = 0;
  int64_t reserved0 = 0;
  int64_t reserved1 = 0;
};
static_assert(sizeof(FlatHeader) == kHeaderBytes);

Status CheckHostEndianness() {
  if constexpr (std::endian::native != std::endian::little) {
    return FailedPreconditionError(
        "RSF1 flat files are little-endian; this host is not");
  }
  return OkStatus();
}

/// Shared open-time validation: size arithmetic, magic/version, CRC.
/// Returns the header; the caller slices the sections.
Result<FlatHeader> ParseAndCheck(std::string_view bytes,
                                 const std::string& path) {
  RANGESYN_RETURN_IF_ERROR(CheckHostEndianness());
  if (bytes.size() < kHeaderBytes + kTrailerBytes) {
    return InvalidArgumentError(
        StrCat("flat file '", path, "': truncated (", bytes.size(),
               " bytes)"));
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + bytes.size() - kTrailerBytes,
              kTrailerBytes);
  const uint32_t actual_crc =
      Crc32c(bytes.substr(0, bytes.size() - kTrailerBytes));
  if (stored_crc != actual_crc) {
    return InvalidArgumentError(
        StrCat("flat file '", path, "': CRC32C mismatch (stored ",
               stored_crc, ", computed ", actual_crc, ")"));
  }
  FlatHeader header;
  std::memcpy(&header, bytes.data(), kHeaderBytes);
  if (header.magic != kFlatMagic) {
    return InvalidArgumentError(
        StrCat("flat file '", path, "': bad magic"));
  }
  if (header.version != kFlatVersion) {
    return InvalidArgumentError(
        StrCat("flat file '", path, "': unsupported version ",
               header.version));
  }
  if (header.zero != 0 || header.reserved0 != 0 || header.reserved1 != 0) {
    return InvalidArgumentError(
        StrCat("flat file '", path, "': nonzero reserved fields"));
  }
  if (header.i64_count < 0 || header.f64_count < 0) {
    return InvalidArgumentError(
        StrCat("flat file '", path, "': negative section count"));
  }
  // Overflow-safe size check: counts are bounded by the actual file size
  // before the multiply.
  const uint64_t payload_words =
      static_cast<uint64_t>(header.i64_count) +
      static_cast<uint64_t>(header.f64_count);
  const uint64_t expected =
      kHeaderBytes + kTrailerBytes + payload_words * 8;
  if (payload_words > bytes.size() / 8 || bytes.size() != expected) {
    return InvalidArgumentError(
        StrCat("flat file '", path, "': section counts disagree with file "
               "size"));
  }
  return header;
}

/// mmap'd read-only file region; the FlatSynopsis holds one of these as
/// its backing so the mapping outlives every outstanding view. Owner
/// type: data() lends an interior pointer that is valid exactly as long
/// as the MappedFile (the destructor munmaps).
class RANGESYN_OWNER_TYPE MappedFile {
 public:
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
      return NotFoundError(
          StrCat("cannot open '", path, "': ", std::strerror(errno)));
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      return InternalError(
          StrCat("cannot stat '", path, "': ", std::strerror(err)));
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      ::close(fd);
      return InvalidArgumentError(StrCat("flat file '", path, "': empty"));
    }
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps its own reference
    if (addr == MAP_FAILED) {
      return InternalError(
          StrCat("cannot mmap '", path, "': ", std::strerror(errno)));
    }
    return std::make_shared<MappedFile>(addr, size);
  }

  MappedFile(void* addr, size_t size) : addr_(addr), size_(size) {}
  ~MappedFile() { ::munmap(addr_, size_); }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  RANGESYN_LENDS_VIEW const char* data() const {
    return static_cast<const char*>(addr_);
  }
  size_t size() const { return size_; }

 private:
  void* addr_;
  size_t size_;
};

}  // namespace

Result<std::string> EncodeFlatSynopsis(const FlatSynopsis& flat) {
  RANGESYN_RETURN_IF_ERROR(CheckHostEndianness());
  FlatHeader header;
  header.magic = kFlatMagic;
  header.version = kFlatVersion;
  header.kind = static_cast<uint8_t>(flat.kind());
  header.aux = flat.aux();
  header.n = flat.n();
  header.num_buckets = flat.num_buckets();
  header.padded_size = flat.padded_size();
  header.i64_count = static_cast<int64_t>(flat.i64s().size());
  header.f64_count = static_cast<int64_t>(flat.f64s().size());
  std::string out;
  out.resize(kHeaderBytes + 8 * (flat.i64s().size() + flat.f64s().size()) +
             kTrailerBytes);
  char* p = out.data();
  std::memcpy(p, &header, kHeaderBytes);
  p += kHeaderBytes;
  std::memcpy(p, flat.i64s().data(), 8 * flat.i64s().size());
  p += 8 * flat.i64s().size();
  std::memcpy(p, flat.f64s().data(), 8 * flat.f64s().size());
  p += 8 * flat.f64s().size();
  const uint32_t crc = Crc32c(
      std::string_view(out.data(), out.size() - kTrailerBytes));
  std::memcpy(p, &crc, kTrailerBytes);
  return out;
}

Status SaveFlatSynopsis(const FlatSynopsis& flat, const std::string& path) {
  RANGESYN_ASSIGN_OR_RETURN(const std::string bytes,
                            EncodeFlatSynopsis(flat));
  return AtomicWriteFile(path, bytes);
}

Result<std::shared_ptr<const FlatSynopsis>> OpenFlatMapped(
    const std::string& path) {
  RANGESYN_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> file,
                            MappedFile::Open(path));
  const std::string_view bytes(file->data(), file->size());
  RANGESYN_ASSIGN_OR_RETURN(const FlatHeader header,
                            ParseAndCheck(bytes, path));
  // mmap returns page-aligned storage and both sections start at 8-byte
  // offsets, so the reinterpret casts below are aligned loads.
  const auto* i64s =
      reinterpret_cast<const int64_t*>(file->data() + kHeaderBytes);
  const auto* f64s = reinterpret_cast<const double*>(
      file->data() + kHeaderBytes + 8 * header.i64_count);
  return FlatSynopsis::FromBuffers(
      static_cast<FlatKind>(header.kind), header.aux, header.n,
      header.num_buckets, header.padded_size,
      std::span<const int64_t>(i64s,
                               static_cast<size_t>(header.i64_count)),
      std::span<const double>(f64s, static_cast<size_t>(header.f64_count)),
      std::move(file));
}

Result<std::shared_ptr<const FlatSynopsis>> OpenFlatHeap(
    const std::string& path) {
  RANGESYN_ASSIGN_OR_RETURN(const std::string contents,
                            ReadFileToString(path));
  RANGESYN_ASSIGN_OR_RETURN(const FlatHeader header,
                            ParseAndCheck(contents, path));
  // The string buffer has no alignment guarantee; copy the sections into
  // typed vectors (this is the allocating fallback path by design).
  std::vector<int64_t> i64s(static_cast<size_t>(header.i64_count));
  std::vector<double> f64s(static_cast<size_t>(header.f64_count));
  std::memcpy(i64s.data(), contents.data() + kHeaderBytes,
              8 * i64s.size());
  std::memcpy(f64s.data(),
              contents.data() + kHeaderBytes + 8 * i64s.size(),
              8 * f64s.size());
  return FlatSynopsis::FromBuffersCopied(
      static_cast<FlatKind>(header.kind), header.aux, header.n,
      header.num_buckets, header.padded_size, i64s, f64s);
}

}  // namespace rangesyn
