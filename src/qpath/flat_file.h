#ifndef RANGESYN_QPATH_FLAT_FILE_H_
#define RANGESYN_QPATH_FLAT_FILE_H_

#include <memory>
#include <string>

#include "core/analysis_annotations.h"
#include "core/result.h"
#include "qpath/flat_synopsis.h"

namespace rangesyn {

/// On-disk companion of the v2 synopsis format, laid out for zero-copy
/// serving (DESIGN.md §11.3). Unlike the v2 stream (length-prefixed
/// vectors, parsed into fresh heap objects), an RSF1 file *is* the
/// runtime representation: a 64-byte header, the 8-byte-aligned i64 and
/// f64 sections exactly as FlatSynopsis addresses them, and a CRC32C
/// trailer over everything preceding it.
///
///   offset  0  u32  magic "RSF1" (bytes 52 53 46 31)
///           4  u8   version (1)
///           5  u8   kind (FlatKind)
///           6  u8   aux (rounding / wavelet domain)
///           7  u8   zero
///           8  i64  n
///          16  i64  num_buckets
///          24  i64  padded_size
///          32  i64  i64_count
///          40  i64  f64_count
///          48  2×i64 reserved (zero)
///          64  i64 section, then f64 section (native little-endian)
///         end-4  u32 CRC32C over [0, end-4)
///
/// OpenFlatMapped checks the CRC once at open, validates the structure
/// (FlatSynopsis::FromBuffers re-derives the Eytzinger mirror and height
/// table), and then serves queries straight out of the mapping — no
/// deserialization allocations, shared read-only pages across processes.
/// Numbers are stored native little-endian; open fails cleanly on a
/// big-endian host rather than mis-reading.

/// Serializes a flat synopsis into RSF1 bytes.
Result<std::string> EncodeFlatSynopsis(const FlatSynopsis& flat);

/// Writes RSF1 atomically (temp file + rename + fsync).
Status SaveFlatSynopsis(const FlatSynopsis& flat, const std::string& path);

/// Opens an RSF1 file zero-copy: mmap read-only, CRC32C verified once,
/// structure validated, then served from the mapping. The returned
/// synopsis keeps the mapping alive for its own lifetime.
RANGESYN_LENDS_VIEW Result<std::shared_ptr<const FlatSynopsis>>
OpenFlatMapped(const std::string& path);

/// Opens an RSF1 file into owned heap buffers — same validation, same
/// bit-identical answers; for hosts or filesystems where mmap is
/// unavailable, and for the mmap-vs-heap identity leg of the test suite.
RANGESYN_LENDS_VIEW Result<std::shared_ptr<const FlatSynopsis>>
OpenFlatHeap(const std::string& path);

}  // namespace rangesyn

#endif  // RANGESYN_QPATH_FLAT_FILE_H_
