#include "histogram/builders.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>

#include "core/strings.h"
#include "histogram/bucket_cost.h"
#include "histogram/dp.h"
#include "histogram/prefix_stats.h"

namespace rangesyn {
namespace {

Status ValidateInput(const std::vector<int64_t>& data, int64_t buckets) {
  if (data.empty()) return InvalidArgumentError("builder: empty data");
  if (buckets < 1) return InvalidArgumentError("builder: buckets must be >= 1");
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i] < 0) {
      return InvalidArgumentError(
          StrCat("builder: negative count at index ", i));
    }
  }
  return OkStatus();
}

}  // namespace

Result<Sap0Histogram> BuildSap0(const std::vector<int64_t>& data,
                                int64_t buckets,
                                const Deadline& deadline) {
  RANGESYN_RETURN_IF_ERROR(ValidateInput(data, buckets));
  PrefixStats stats(data);
  BucketCosts costs(stats);
  RANGESYN_ASSIGN_OR_RETURN(
      IntervalDpResult dp,
      SolveIntervalDp(stats.n(), buckets,
                      [&costs](int64_t l, int64_t r) {
                        return costs.Sap0Cost(l, r);
                      },
                      /*exact_buckets=*/false, deadline));
  return Sap0Histogram::Build(data, dp.partition);
}

Result<Sap1Histogram> BuildSap1(const std::vector<int64_t>& data,
                                int64_t buckets,
                                const Deadline& deadline) {
  RANGESYN_RETURN_IF_ERROR(ValidateInput(data, buckets));
  PrefixStats stats(data);
  BucketCosts costs(stats);
  RANGESYN_ASSIGN_OR_RETURN(
      IntervalDpResult dp,
      SolveIntervalDp(stats.n(), buckets,
                      [&costs](int64_t l, int64_t r) {
                        return costs.Sap1Cost(l, r);
                      },
                      /*exact_buckets=*/false, deadline));
  return Sap1Histogram::Build(data, dp.partition);
}

Result<Sap2Histogram> BuildSap2(const std::vector<int64_t>& data,
                                int64_t buckets,
                                const Deadline& deadline) {
  RANGESYN_RETURN_IF_ERROR(ValidateInput(data, buckets));
  PrefixStats stats(data);
  BucketCosts costs(stats);
  RANGESYN_ASSIGN_OR_RETURN(
      IntervalDpResult dp,
      SolveIntervalDp(stats.n(), buckets,
                      [&costs](int64_t l, int64_t r) {
                        return costs.Sap2Cost(l, r);
                      },
                      /*exact_buckets=*/false, deadline));
  return Sap2Histogram::Build(data, dp.partition);
}

Result<AvgHistogram> BuildA0(const std::vector<int64_t>& data,
                             int64_t buckets, PieceRounding rounding,
                             const Deadline& deadline) {
  RANGESYN_RETURN_IF_ERROR(ValidateInput(data, buckets));
  PrefixStats stats(data);
  BucketCosts costs(stats);
  RANGESYN_ASSIGN_OR_RETURN(
      IntervalDpResult dp,
      SolveIntervalDp(stats.n(), buckets,
                      [&costs](int64_t l, int64_t r) {
                        return costs.A0Cost(l, r);
                      },
                      /*exact_buckets=*/false, deadline));
  return AvgHistogram::WithTrueAverages(data, dp.partition, "A0", rounding);
}

Result<AvgHistogram> BuildPointOpt(const std::vector<int64_t>& data,
                                   int64_t buckets, PieceRounding rounding,
                                   const Deadline& deadline) {
  RANGESYN_RETURN_IF_ERROR(ValidateInput(data, buckets));
  const int64_t n = static_cast<int64_t>(data.size());
  WeightedPointCosts costs(data,
                           WeightedPointCosts::RangeCoverageWeights(n));
  RANGESYN_ASSIGN_OR_RETURN(
      IntervalDpResult dp,
      SolveIntervalDp(n, buckets,
                      [&costs](int64_t l, int64_t r) {
                        return costs.Cost(l, r);
                      },
                      /*exact_buckets=*/false, deadline));
  // POINT-OPT stores the value that is optimal for its own (weighted point
  // query) objective: the weighted bucket mean.
  std::vector<double> values(static_cast<size_t>(dp.partition.num_buckets()));
  // analyze: waive(SA-105) O(B) value assembly over prefix sums after the
  // polled DP has already succeeded.
  for (int64_t k = 0; k < dp.partition.num_buckets(); ++k) {
    values[static_cast<size_t>(k)] = costs.WeightedMean(
        dp.partition.bucket_start(k), dp.partition.bucket_end(k));
  }
  return AvgHistogram::Create(std::move(dp.partition), std::move(values),
                              "POINT-OPT", rounding);
}

Result<AvgHistogram> BuildVOptimal(const std::vector<int64_t>& data,
                                   int64_t buckets, PieceRounding rounding,
                                   const Deadline& deadline) {
  RANGESYN_RETURN_IF_ERROR(ValidateInput(data, buckets));
  const int64_t n = static_cast<int64_t>(data.size());
  WeightedPointCosts costs(data, WeightedPointCosts::UniformWeights(n));
  RANGESYN_ASSIGN_OR_RETURN(
      IntervalDpResult dp,
      SolveIntervalDp(n, buckets,
                      [&costs](int64_t l, int64_t r) {
                        return costs.Cost(l, r);
                      },
                      /*exact_buckets=*/false, deadline));
  return AvgHistogram::WithTrueAverages(data, dp.partition, "V-OPT",
                                        rounding);
}

Result<AvgHistogram> BuildEquiWidth(const std::vector<int64_t>& data,
                                    int64_t buckets, PieceRounding rounding) {
  RANGESYN_RETURN_IF_ERROR(ValidateInput(data, buckets));
  RANGESYN_ASSIGN_OR_RETURN(
      Partition partition,
      Partition::EquiWidth(static_cast<int64_t>(data.size()), buckets));
  return AvgHistogram::WithTrueAverages(data, std::move(partition),
                                        "EQUI-WIDTH", rounding);
}

Result<AvgHistogram> BuildEquiDepth(const std::vector<int64_t>& data,
                                    int64_t buckets, PieceRounding rounding) {
  RANGESYN_RETURN_IF_ERROR(ValidateInput(data, buckets));
  const int64_t n = static_cast<int64_t>(data.size());
  PrefixStats stats(data);
  const int64_t b = std::min<int64_t>(buckets, n);
  const double total = static_cast<double>(stats.TotalVolume());
  std::vector<int64_t> ends;
  ends.reserve(static_cast<size_t>(b));
  int64_t prev = 0;
  for (int64_t k = 1; k < b; ++k) {
    // Smallest position whose prefix mass reaches k/b of the total, while
    // leaving room for the remaining buckets.
    const double target = total * static_cast<double>(k) /
                          static_cast<double>(b);
    int64_t e = prev + 1;
    while (e < n - (b - k) &&
           static_cast<double>(stats.P(e)) < target) {
      ++e;
    }
    e = std::min<int64_t>(e, n - (b - k));
    e = std::max<int64_t>(e, prev + 1);
    ends.push_back(e);
    prev = e;
  }
  ends.push_back(n);
  RANGESYN_ASSIGN_OR_RETURN(Partition partition,
                            Partition::FromEnds(n, std::move(ends)));
  return AvgHistogram::WithTrueAverages(data, std::move(partition),
                                        "EQUI-DEPTH", rounding);
}

Result<AvgHistogram> BuildMaxDiff(const std::vector<int64_t>& data,
                                  int64_t buckets, PieceRounding rounding) {
  RANGESYN_RETURN_IF_ERROR(ValidateInput(data, buckets));
  const int64_t n = static_cast<int64_t>(data.size());
  const int64_t b = std::min<int64_t>(buckets, n);
  // Rank interior boundaries 1..n-1 by |A[i+1] - A[i]| descending and keep
  // the b-1 largest as bucket ends.
  std::vector<int64_t> order(static_cast<size_t>(n - 1));
  std::iota(order.begin(), order.end(), int64_t{1});
  std::sort(order.begin(), order.end(), [&data](int64_t x, int64_t y) {
    const int64_t dx = std::llabs(data[static_cast<size_t>(x)] -
                                  data[static_cast<size_t>(x - 1)]);
    const int64_t dy = std::llabs(data[static_cast<size_t>(y)] -
                                  data[static_cast<size_t>(y - 1)]);
    if (dx != dy) return dx > dy;
    return x < y;  // deterministic tie-break
  });
  std::vector<int64_t> ends(order.begin(),
                            order.begin() + std::min<int64_t>(b - 1, n - 1));
  ends.push_back(n);
  std::sort(ends.begin(), ends.end());
  ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
  RANGESYN_ASSIGN_OR_RETURN(Partition partition,
                            Partition::FromEnds(n, std::move(ends)));
  return AvgHistogram::WithTrueAverages(data, std::move(partition),
                                        "MAXDIFF", rounding);
}

Result<AvgHistogram> BuildPrefixOpt(const std::vector<int64_t>& data,
                                    int64_t buckets, PieceRounding rounding,
                                    const Deadline& deadline) {
  RANGESYN_RETURN_IF_ERROR(ValidateInput(data, buckets));
  PrefixStats stats(data);
  BucketCosts costs(stats);
  RANGESYN_ASSIGN_OR_RETURN(
      IntervalDpResult dp,
      SolveIntervalDp(stats.n(), buckets,
                      [&costs](int64_t l, int64_t r) {
                        return costs.SumV2(l, r);
                      },
                      /*exact_buckets=*/false, deadline));
  return AvgHistogram::WithTrueAverages(data, dp.partition, "PREFIX-OPT",
                                        rounding);
}

Result<NaiveEstimator> BuildNaive(const std::vector<int64_t>& data) {
  RANGESYN_RETURN_IF_ERROR(ValidateInput(data, 1));
  return NaiveEstimator::Build(data);
}

}  // namespace rangesyn
