#ifndef RANGESYN_HISTOGRAM_PARTITION_H_
#define RANGESYN_HISTOGRAM_PARTITION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/result.h"

namespace rangesyn {

/// A partition of the domain 1..n into contiguous buckets, represented by
/// the 1-based right endpoints of the buckets; the last endpoint is always
/// n. E.g. {3, 7, 10} over n=10 is buckets [1,3], [4,7], [8,10].
class Partition {
 public:
  /// Validated construction. Requires strictly increasing endpoints in
  /// [1, n] with ends.back() == n and at least one bucket.
  static Result<Partition> FromEnds(int64_t n, std::vector<int64_t> ends);

  /// The trivial single-bucket partition of 1..n.
  static Partition Whole(int64_t n);

  /// Equal-width partition into (at most) `buckets` buckets.
  static Result<Partition> EquiWidth(int64_t n, int64_t buckets);

  int64_t n() const { return n_; }
  int64_t num_buckets() const { return static_cast<int64_t>(ends_.size()); }
  const std::vector<int64_t>& ends() const { return ends_; }

  /// Left endpoint of bucket k (0-based bucket index), 1-based position.
  RANGESYN_HOT_PATH int64_t bucket_start(int64_t k) const {
    return k == 0 ? 1 : ends_[static_cast<size_t>(k - 1)] + 1;
  }
  /// Right endpoint of bucket k, 1-based position.
  RANGESYN_HOT_PATH int64_t bucket_end(int64_t k) const {
    return ends_[static_cast<size_t>(k)];
  }
  /// Width of bucket k.
  RANGESYN_HOT_PATH int64_t bucket_width(int64_t k) const {
    return bucket_end(k) - bucket_start(k) + 1;
  }

  /// 0-based index of the bucket containing position i (1 <= i <= n);
  /// O(log B).
  RANGESYN_HOT_PATH int64_t BucketOf(int64_t i) const;

  friend bool operator==(const Partition&, const Partition&) = default;

 private:
  Partition(int64_t n, std::vector<int64_t> ends)
      : n_(n), ends_(std::move(ends)) {}

  int64_t n_ = 0;
  std::vector<int64_t> ends_;
};

/// Invokes `fn` for every partition of 1..n into exactly `buckets`
/// non-empty buckets — C(n-1, buckets-1) partitions. Exhaustive-search
/// oracle for optimality tests; use only for small n.
void ForEachPartition(int64_t n, int64_t buckets,
                      const std::function<void(const Partition&)>& fn);

}  // namespace rangesyn

#endif  // RANGESYN_HISTOGRAM_PARTITION_H_
