#include "histogram/histogram.h"

#include <numeric>

#include "core/logging.h"
#include "core/mathutil.h"
#include "core/strings.h"
#include "histogram/prefix_stats.h"
#include "histogram/quadratic_fit.h"

namespace rangesyn {
namespace {

double MaybeRoundPiece(double piece, PieceRounding rounding) {
  if (rounding == PieceRounding::kPerPiece) {
    return static_cast<double>(RoundHalfToEven(piece));
  }
  return piece;
}

/// cum[k] = sum over buckets j < k of width_j * value_j.
std::vector<double> CumulativeMass(const Partition& partition,
                                   const std::vector<double>& values) {
  std::vector<double> cum(static_cast<size_t>(partition.num_buckets()) + 1,
                          0.0);
  for (int64_t k = 0; k < partition.num_buckets(); ++k) {
    cum[static_cast<size_t>(k + 1)] =
        cum[static_cast<size_t>(k)] +
        static_cast<double>(partition.bucket_width(k)) *
            values[static_cast<size_t>(k)];
  }
  return cum;
}

}  // namespace

// ---------------------------------------------------------------- AvgHistogram

AvgHistogram::AvgHistogram(Partition partition, std::vector<double> values,
                           std::string name, PieceRounding rounding)
    : partition_(std::move(partition)),
      values_(std::move(values)),
      cum_mass_(CumulativeMass(partition_, values_)),
      name_(std::move(name)),
      rounding_(rounding) {}

Result<AvgHistogram> AvgHistogram::Create(Partition partition,
                                          std::vector<double> values,
                                          std::string name,
                                          PieceRounding rounding) {
  if (static_cast<int64_t>(values.size()) != partition.num_buckets()) {
    return InvalidArgumentError(
        StrCat("AvgHistogram: ", values.size(), " values for ",
               partition.num_buckets(), " buckets"));
  }
  return AvgHistogram(std::move(partition), std::move(values),
                      std::move(name), rounding);
}

Result<AvgHistogram> AvgHistogram::WithTrueAverages(
    const std::vector<int64_t>& data, Partition partition, std::string name,
    PieceRounding rounding) {
  if (static_cast<int64_t>(data.size()) != partition.n()) {
    return InvalidArgumentError("AvgHistogram: data size != partition n");
  }
  PrefixStats stats(data);
  std::vector<double> values(static_cast<size_t>(partition.num_buckets()));
  for (int64_t k = 0; k < partition.num_buckets(); ++k) {
    const int64_t l = partition.bucket_start(k);
    const int64_t r = partition.bucket_end(k);
    values[static_cast<size_t>(k)] =
        static_cast<double>(stats.Sum(l, r)) /
        static_cast<double>(r - l + 1);
  }
  return Create(std::move(partition), std::move(values), std::move(name),
                rounding);
}

double AvgHistogram::EstimateRange(int64_t a, int64_t b) const {
  RANGESYN_DCHECK(a >= 1 && a <= b && b <= partition_.n());
  const int64_t ka = partition_.BucketOf(a);
  const int64_t kb = partition_.BucketOf(b);
  if (ka == kb) {
    const double whole =
        static_cast<double>(b - a + 1) * values_[static_cast<size_t>(ka)];
    if (rounding_ == PieceRounding::kNone) return whole;
    return static_cast<double>(RoundHalfToEven(whole));
  }
  const double left = static_cast<double>(partition_.bucket_end(ka) - a + 1) *
                      values_[static_cast<size_t>(ka)];
  const double right =
      static_cast<double>(b - partition_.bucket_start(kb) + 1) *
      values_[static_cast<size_t>(kb)];
  const double middle = MiddleMass(ka, kb);
  const double total = MaybeRoundPiece(left, rounding_) + middle +
                       MaybeRoundPiece(right, rounding_);
  if (rounding_ == PieceRounding::kWhole) {
    return static_cast<double>(RoundHalfToEven(total));
  }
  return total;
}

AvgHistogram AvgHistogram::WithValues(std::vector<double> values,
                                      std::string name) const {
  RANGESYN_CHECK_EQ(static_cast<int64_t>(values.size()),
                    partition_.num_buckets());
  return AvgHistogram(partition_, std::move(values), std::move(name),
                      rounding_);
}

// --------------------------------------------------------------- Sap0Histogram

Sap0Histogram::Sap0Histogram(Partition partition, std::vector<double> suff,
                             std::vector<double> pref,
                             std::vector<double> avg)
    : partition_(std::move(partition)),
      cum_mass_(CumulativeMass(partition_, avg)),
      suff_(std::move(suff)),
      pref_(std::move(pref)),
      avg_(std::move(avg)) {}

Result<Sap0Histogram> Sap0Histogram::Build(const std::vector<int64_t>& data,
                                           Partition partition) {
  if (static_cast<int64_t>(data.size()) != partition.n()) {
    return InvalidArgumentError("Sap0Histogram: data size != partition n");
  }
  PrefixStats stats(data);
  const int64_t num_buckets = partition.num_buckets();
  std::vector<double> suff(static_cast<size_t>(num_buckets));
  std::vector<double> pref(static_cast<size_t>(num_buckets));
  std::vector<double> avg(static_cast<size_t>(num_buckets));
  for (int64_t k = 0; k < num_buckets; ++k) {
    const int64_t l = partition.bucket_start(k);
    const int64_t r = partition.bucket_end(k);
    const double m = static_cast<double>(r - l + 1);
    // Average of suffix sums s[a,r] over a in [l,r]:
    //   (1/m) * (m*P[r] - sum_{t=l-1..r-1} P[t]).
    const double sum_suffix =
        m * static_cast<double>(stats.P(r)) - stats.SumP(l - 1, r - 1);
    // Average of prefix sums s[l,b] over b in [l,r]:
    //   (1/m) * (sum_{t=l..r} P[t] - m*P[l-1]).
    const double sum_prefix =
        stats.SumP(l, r) - m * static_cast<double>(stats.P(l - 1));
    suff[static_cast<size_t>(k)] = sum_suffix / m;
    pref[static_cast<size_t>(k)] = sum_prefix / m;
    avg[static_cast<size_t>(k)] =
        static_cast<double>(stats.Sum(l, r)) / m;
  }
  return Sap0Histogram(std::move(partition), std::move(suff),
                       std::move(pref), std::move(avg));
}

Result<Sap0Histogram> Sap0Histogram::FromSummaries(
    Partition partition, std::vector<double> suffixes,
    std::vector<double> prefixes) {
  const int64_t num_buckets = partition.num_buckets();
  if (static_cast<int64_t>(suffixes.size()) != num_buckets ||
      static_cast<int64_t>(prefixes.size()) != num_buckets) {
    return InvalidArgumentError("Sap0::FromSummaries: size mismatch");
  }
  std::vector<double> avg(static_cast<size_t>(num_buckets));
  for (int64_t k = 0; k < num_buckets; ++k) {
    const double m = static_cast<double>(partition.bucket_width(k));
    // Sum over the bucket of (prefix sum + suffix sum) counts every entry
    // m+1 times: m * (pref + suff) = (m+1) * s, so avg = s/m below.
    avg[static_cast<size_t>(k)] = (prefixes[static_cast<size_t>(k)] +
                                   suffixes[static_cast<size_t>(k)]) /
                                  (m + 1.0);
  }
  return Sap0Histogram(std::move(partition), std::move(suffixes),
                       std::move(prefixes), std::move(avg));
}

double Sap0Histogram::EstimateRange(int64_t a, int64_t b) const {
  RANGESYN_DCHECK(a >= 1 && a <= b && b <= partition_.n());
  const int64_t ka = partition_.BucketOf(a);
  const int64_t kb = partition_.BucketOf(b);
  if (ka == kb) {
    return static_cast<double>(b - a + 1) * avg_[static_cast<size_t>(ka)];
  }
  return suff_[static_cast<size_t>(ka)] + MiddleMass(ka, kb) +
         pref_[static_cast<size_t>(kb)];
}

// --------------------------------------------------------------- Sap1Histogram

Sap1Histogram::Sap1Histogram(Partition partition, std::vector<double> ss,
                             std::vector<double> si, std::vector<double> ps,
                             std::vector<double> pi, std::vector<double> avg)
    : partition_(std::move(partition)),
      cum_mass_(CumulativeMass(partition_, avg)),
      suff_slope_(std::move(ss)),
      suff_icept_(std::move(si)),
      pref_slope_(std::move(ps)),
      pref_icept_(std::move(pi)),
      avg_(std::move(avg)) {}

Result<Sap1Histogram> Sap1Histogram::Build(const std::vector<int64_t>& data,
                                           Partition partition) {
  if (static_cast<int64_t>(data.size()) != partition.n()) {
    return InvalidArgumentError("Sap1Histogram: data size != partition n");
  }
  PrefixStats stats(data);
  const int64_t num_buckets = partition.num_buckets();
  std::vector<double> ss(static_cast<size_t>(num_buckets));
  std::vector<double> si(static_cast<size_t>(num_buckets));
  std::vector<double> ps(static_cast<size_t>(num_buckets));
  std::vector<double> pi(static_cast<size_t>(num_buckets));
  std::vector<double> avg(static_cast<size_t>(num_buckets));
  for (int64_t k = 0; k < num_buckets; ++k) {
    const int64_t l = partition.bucket_start(k);
    const int64_t r = partition.bucket_end(k);
    const double m = static_cast<double>(r - l + 1);
    avg[static_cast<size_t>(k)] = static_cast<double>(stats.Sum(l, r)) / m;

    // Regress suffix sums y_a = s[a,r] on piece length x_a = r-a+1.
    // x takes values 1..m; Sxx = m(m^2-1)/12 in closed form.
    const double sum_x = m * (m + 1) / 2.0;
    const double sxx = m * (m * m - 1.0) / 12.0;
    {
      const double sum_y =
          m * static_cast<double>(stats.P(r)) - stats.SumP(l - 1, r - 1);
      // sum of x*y with t = a-1 in [l-1, r-1], x = r-t, y = P[r]-P[t].
      const double sum_xy =
          static_cast<double>(stats.P(r)) * sum_x -
          static_cast<double>(r) * stats.SumP(l - 1, r - 1) +
          stats.SumTP(l - 1, r - 1);
      const double sxy = sum_xy - sum_x * sum_y / m;
      const double slope = (sxx > 0.0) ? sxy / sxx : 0.0;
      const double icept = sum_y / m - slope * sum_x / m;
      ss[static_cast<size_t>(k)] = slope;
      si[static_cast<size_t>(k)] = icept;
    }
    // Regress prefix sums y_b = s[l,b] on piece length x_b = b-l+1.
    {
      const double sum_y =
          stats.SumP(l, r) - m * static_cast<double>(stats.P(l - 1));
      // sum of x*y with b in [l, r], x = b-l+1, y = P[b]-P[l-1].
      const double sum_xy =
          (stats.SumTP(l, r) -
           static_cast<double>(l - 1) * stats.SumP(l, r)) -
          static_cast<double>(stats.P(l - 1)) * sum_x;
      const double sxy = sum_xy - sum_x * sum_y / m;
      const double slope = (sxx > 0.0) ? sxy / sxx : 0.0;
      const double icept = sum_y / m - slope * sum_x / m;
      ps[static_cast<size_t>(k)] = slope;
      pi[static_cast<size_t>(k)] = icept;
    }
  }
  return Sap1Histogram(std::move(partition), std::move(ss), std::move(si),
                       std::move(ps), std::move(pi), std::move(avg));
}

Result<Sap1Histogram> Sap1Histogram::FromSummaries(
    Partition partition, std::vector<double> suffix_slopes,
    std::vector<double> suffix_intercepts, std::vector<double> prefix_slopes,
    std::vector<double> prefix_intercepts) {
  const int64_t num_buckets = partition.num_buckets();
  if (static_cast<int64_t>(suffix_slopes.size()) != num_buckets ||
      static_cast<int64_t>(suffix_intercepts.size()) != num_buckets ||
      static_cast<int64_t>(prefix_slopes.size()) != num_buckets ||
      static_cast<int64_t>(prefix_intercepts.size()) != num_buckets) {
    return InvalidArgumentError("Sap1::FromSummaries: size mismatch");
  }
  std::vector<double> avg(static_cast<size_t>(num_buckets));
  for (int64_t k = 0; k < num_buckets; ++k) {
    const double m = static_cast<double>(partition.bucket_width(k));
    const double mean_len = (m + 1.0) / 2.0;
    // Regression lines pass through (x̄, ȳ), so the SAP0-style averages of
    // the suffix/prefix sums are recoverable from the fits.
    const double suff_bar =
        suffix_slopes[static_cast<size_t>(k)] * mean_len +
        suffix_intercepts[static_cast<size_t>(k)];
    const double pref_bar =
        prefix_slopes[static_cast<size_t>(k)] * mean_len +
        prefix_intercepts[static_cast<size_t>(k)];
    avg[static_cast<size_t>(k)] = (pref_bar + suff_bar) / (m + 1.0);
  }
  return Sap1Histogram(std::move(partition), std::move(suffix_slopes),
                       std::move(suffix_intercepts),
                       std::move(prefix_slopes),
                       std::move(prefix_intercepts), std::move(avg));
}

double Sap1Histogram::EstimateRange(int64_t a, int64_t b) const {
  RANGESYN_DCHECK(a >= 1 && a <= b && b <= partition_.n());
  const int64_t ka = partition_.BucketOf(a);
  const int64_t kb = partition_.BucketOf(b);
  if (ka == kb) {
    return static_cast<double>(b - a + 1) * avg_[static_cast<size_t>(ka)];
  }
  const double left_len =
      static_cast<double>(partition_.bucket_end(ka) - a + 1);
  const double right_len =
      static_cast<double>(b - partition_.bucket_start(kb) + 1);
  return left_len * suff_slope_[static_cast<size_t>(ka)] +
         suff_icept_[static_cast<size_t>(ka)] +
         right_len * pref_slope_[static_cast<size_t>(kb)] +
         pref_icept_[static_cast<size_t>(kb)] + MiddleMass(ka, kb);
}

// --------------------------------------------------------------- Sap2Histogram

Sap2Histogram::Sap2Histogram(Partition partition, std::vector<Model> suff,
                             std::vector<Model> pref,
                             std::vector<double> avg)
    : partition_(std::move(partition)),
      cum_mass_(CumulativeMass(partition_, avg)),
      suff_(std::move(suff)),
      pref_(std::move(pref)),
      avg_(std::move(avg)) {}

Result<Sap2Histogram> Sap2Histogram::Build(const std::vector<int64_t>& data,
                                           Partition partition) {
  if (static_cast<int64_t>(data.size()) != partition.n()) {
    return InvalidArgumentError("Sap2Histogram: data size != partition n");
  }
  PrefixStats stats(data);
  const int64_t num_buckets = partition.num_buckets();
  std::vector<Model> suff(static_cast<size_t>(num_buckets));
  std::vector<Model> pref(static_cast<size_t>(num_buckets));
  std::vector<double> avg(static_cast<size_t>(num_buckets));
  for (int64_t k = 0; k < num_buckets; ++k) {
    const int64_t l = partition.bucket_start(k);
    const int64_t r = partition.bucket_end(k);
    const double m = static_cast<double>(r - l + 1);
    avg[static_cast<size_t>(k)] = static_cast<double>(stats.Sum(l, r)) / m;
    // Piece lengths x run over 1..m for both sides.
    const double sx = PrefixStats::SumT(1, r - l + 1);
    const double sx2 = PrefixStats::SumT2(1, r - l + 1);
    const double sx3 = PrefixStats::SumT3(1, r - l + 1);
    const double sx4 = PrefixStats::SumT4(1, r - l + 1);
    const double pr = static_cast<double>(stats.P(r));
    const double pl1 = static_cast<double>(stats.P(l - 1));
    {
      // Suffix sums: t = a-1 in [l-1, r-1], x = r-t, y = P[r]-P[t].
      const double sum_p = stats.SumP(l - 1, r - 1);
      const double sum_tp = stats.SumTP(l - 1, r - 1);
      const double sum_t2p = stats.SumT2P(l - 1, r - 1);
      const double sy = m * pr - sum_p;
      const double sy2 =
          m * pr * pr - 2.0 * pr * sum_p + stats.SumP2(l - 1, r - 1);
      const double sxy =
          pr * sx - static_cast<double>(r) * sum_p + sum_tp;
      const double sx2y =
          pr * sx2 - (static_cast<double>(r) * static_cast<double>(r) *
                          sum_p -
                      2.0 * static_cast<double>(r) * sum_tp + sum_t2p);
      const QuadraticFit fit = FitQuadraticFromMoments(
          m, sx, sx2, sx3, sx4, sy, sxy, sx2y, sy2);
      suff[static_cast<size_t>(k)] = {fit.c0, fit.c1, fit.c2};
    }
    {
      // Prefix sums: b in [l, r], x = b-l+1, y = P[b]-P[l-1].
      const double sum_p = stats.SumP(l, r);
      const double sum_tp = stats.SumTP(l, r);
      const double sum_t2p = stats.SumT2P(l, r);
      const double lm1 = static_cast<double>(l - 1);
      const double sy = sum_p - m * pl1;
      const double sy2 =
          stats.SumP2(l, r) - 2.0 * pl1 * sum_p + m * pl1 * pl1;
      const double sxy = (sum_tp - lm1 * sum_p) - pl1 * sx;
      const double sx2y =
          (sum_t2p - 2.0 * lm1 * sum_tp + lm1 * lm1 * sum_p) - pl1 * sx2;
      const QuadraticFit fit = FitQuadraticFromMoments(
          m, sx, sx2, sx3, sx4, sy, sxy, sx2y, sy2);
      pref[static_cast<size_t>(k)] = {fit.c0, fit.c1, fit.c2};
    }
  }
  return Sap2Histogram(std::move(partition), std::move(suff),
                       std::move(pref), std::move(avg));
}

Result<Sap2Histogram> Sap2Histogram::FromSummaries(
    Partition partition, std::vector<Model> suffix_models,
    std::vector<Model> prefix_models) {
  const int64_t num_buckets = partition.num_buckets();
  if (static_cast<int64_t>(suffix_models.size()) != num_buckets ||
      static_cast<int64_t>(prefix_models.size()) != num_buckets) {
    return InvalidArgumentError("Sap2::FromSummaries: size mismatch");
  }
  std::vector<double> avg(static_cast<size_t>(num_buckets));
  for (int64_t k = 0; k < num_buckets; ++k) {
    const double m = static_cast<double>(partition.bucket_width(k));
    // Least squares with intercept: residuals sum to zero, so the sample
    // mean is the model evaluated at the moment means (x̄, x²-bar).
    const double mean_x = PrefixStats::SumT(1, partition.bucket_width(k)) / m;
    const double mean_x2 =
        PrefixStats::SumT2(1, partition.bucket_width(k)) / m;
    const Model& s = suffix_models[static_cast<size_t>(k)];
    const Model& p = prefix_models[static_cast<size_t>(k)];
    const double suff_bar = s.c0 + s.c1 * mean_x + s.c2 * mean_x2;
    const double pref_bar = p.c0 + p.c1 * mean_x + p.c2 * mean_x2;
    avg[static_cast<size_t>(k)] = (pref_bar + suff_bar) / (m + 1.0);
  }
  return Sap2Histogram(std::move(partition), std::move(suffix_models),
                       std::move(prefix_models), std::move(avg));
}

double Sap2Histogram::EstimateRange(int64_t a, int64_t b) const {
  RANGESYN_DCHECK(a >= 1 && a <= b && b <= partition_.n());
  const int64_t ka = partition_.BucketOf(a);
  const int64_t kb = partition_.BucketOf(b);
  if (ka == kb) {
    return static_cast<double>(b - a + 1) * avg_[static_cast<size_t>(ka)];
  }
  const double left_len =
      static_cast<double>(partition_.bucket_end(ka) - a + 1);
  const double right_len =
      static_cast<double>(b - partition_.bucket_start(kb) + 1);
  return suff_[static_cast<size_t>(ka)].At(left_len) +
         pref_[static_cast<size_t>(kb)].At(right_len) + MiddleMass(ka, kb);
}

// -------------------------------------------------------------- NaiveEstimator

Result<NaiveEstimator> NaiveEstimator::Build(
    const std::vector<int64_t>& data) {
  if (data.empty()) return InvalidArgumentError("NaiveEstimator: empty data");
  const double total = static_cast<double>(
      std::accumulate(data.begin(), data.end(), int64_t{0}));
  return NaiveEstimator(static_cast<int64_t>(data.size()),
                        total / static_cast<double>(data.size()));
}

Result<NaiveEstimator> NaiveEstimator::FromAverage(int64_t n,
                                                   double average) {
  if (n < 1) return InvalidArgumentError("NaiveEstimator: n must be >= 1");
  return NaiveEstimator(n, average);
}

double NaiveEstimator::EstimateRange(int64_t a, int64_t b) const {
  RANGESYN_DCHECK(a >= 1 && a <= b && b <= n_);
  return static_cast<double>(b - a + 1) * avg_;
}

}  // namespace rangesyn
