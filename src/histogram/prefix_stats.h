#ifndef RANGESYN_HISTOGRAM_PREFIX_STATS_H_
#define RANGESYN_HISTOGRAM_PREFIX_STATS_H_

#include <cstdint>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/logging.h"

namespace rangesyn {

/// Precomputed prefix statistics over an integer attribute-value
/// distribution A[1..n]. Provides exact O(1) range sums and the O(1)
/// window moments of the prefix-sum sequence P that all closed-form bucket
/// costs in this library are built from (see DESIGN.md §3.2).
///
/// Index conventions (matching the paper):
///  - data positions are 1-based: A[1..n];
///  - P[t] = A[1] + ... + A[t] for t in 0..n with P[0] = 0;
///  - window-moment methods take inclusive index ranges over 0..n.
class PrefixStats {
 public:
  /// Builds statistics for `data` (data[i] = A[i+1]); all entries must be
  /// non-negative (attribute-value counts).
  explicit PrefixStats(const std::vector<int64_t>& data);

  int64_t n() const { return n_; }

  /// Exact A[i], 1 <= i <= n.
  RANGESYN_HOT_PATH int64_t value(int64_t i) const {
    RANGESYN_DCHECK(i >= 1 && i <= n_);
    return p_[static_cast<size_t>(i)] - p_[static_cast<size_t>(i - 1)];
  }

  /// Exact prefix sum P[t], 0 <= t <= n.
  RANGESYN_HOT_PATH int64_t P(int64_t t) const {
    RANGESYN_DCHECK(t >= 0 && t <= n_);
    return p_[static_cast<size_t>(t)];
  }

  /// Exact range sum s[a,b] = A[a] + ... + A[b], 1 <= a <= b <= n.
  RANGESYN_HOT_PATH int64_t Sum(int64_t a, int64_t b) const {
    RANGESYN_DCHECK(a >= 1 && a <= b && b <= n_);
    return p_[static_cast<size_t>(b)] - p_[static_cast<size_t>(a - 1)];
  }

  /// Total volume s[1,n].
  int64_t TotalVolume() const { return p_[static_cast<size_t>(n_)]; }

  // ---- Window moments over P, inclusive t in [x, y], 0 <= x <= y <= n ----

  /// Σ P[t]
  double SumP(int64_t x, int64_t y) const {
    return WindowSum(cum_p_, x, y);
  }
  /// Σ P[t]²
  double SumP2(int64_t x, int64_t y) const {
    return WindowSum(cum_p2_, x, y);
  }
  /// Σ t·P[t]
  double SumTP(int64_t x, int64_t y) const {
    return WindowSum(cum_tp_, x, y);
  }
  /// Σ t²·P[t]
  double SumT2P(int64_t x, int64_t y) const {
    return WindowSum(cum_t2p_, x, y);
  }
  /// Σ t over [x, y] (closed form).
  static double SumT(int64_t x, int64_t y) {
    const double lo = static_cast<double>(x);
    const double hi = static_cast<double>(y);
    return (hi * (hi + 1) - lo * (lo - 1)) / 2.0;
  }
  /// Σ t² over [x, y] (closed form).
  static double SumT2(int64_t x, int64_t y) {
    auto sq_sum = [](double m) { return m * (m + 1) * (2 * m + 1) / 6.0; };
    return sq_sum(static_cast<double>(y)) -
           sq_sum(static_cast<double>(x) - 1.0);
  }
  /// Σ t³ over [x, y] (closed form).
  static double SumT3(int64_t x, int64_t y) {
    auto cube_sum = [](double m) {
      const double tri = m * (m + 1) / 2.0;
      return tri * tri;
    };
    return cube_sum(static_cast<double>(y)) -
           cube_sum(static_cast<double>(x) - 1.0);
  }
  /// Σ t⁴ over [x, y] (closed form).
  static double SumT4(int64_t x, int64_t y) {
    auto quart_sum = [](double m) {
      return m * (m + 1) * (2 * m + 1) * (3 * m * m + 3 * m - 1) / 30.0;
    };
    return quart_sum(static_cast<double>(y)) -
           quart_sum(static_cast<double>(x) - 1.0);
  }

 private:
  double WindowSum(const std::vector<double>& cum, int64_t x,
                   int64_t y) const {
    RANGESYN_DCHECK(x >= 0 && x <= y && y <= n_);
    const double hi = cum[static_cast<size_t>(y + 1)];
    const double lo = cum[static_cast<size_t>(x)];
    return hi - lo;
  }

  int64_t n_;
  std::vector<int64_t> p_;      // P[0..n], exact
  std::vector<double> cum_p_;   // cum_p_[k] = Σ_{t<k} P[t]
  std::vector<double> cum_p2_;  // Σ_{t<k} P[t]²
  std::vector<double> cum_tp_;   // Σ_{t<k} t·P[t]
  std::vector<double> cum_t2p_;  // Σ_{t<k} t²·P[t]
};

}  // namespace rangesyn

#endif  // RANGESYN_HISTOGRAM_PREFIX_STATS_H_
