#ifndef RANGESYN_HISTOGRAM_DP_H_
#define RANGESYN_HISTOGRAM_DP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/deadline.h"
#include "core/result.h"
#include "histogram/partition.h"

namespace rangesyn {

/// Additive bucket cost oracle: cost of making [l, r] (1-based, inclusive)
/// one bucket. Must be defined for all 1 <= l <= r <= n, and must be safe
/// to invoke concurrently (the DP row fills are parallelized; the stock
/// BucketCosts/WeightedPointCosts oracles are pure reads and qualify).
using BucketCostFn = std::function<double(int64_t l, int64_t r)>;

/// Result of an interval-partition dynamic program.
struct IntervalDpResult {
  Partition partition = Partition::Whole(1);
  double cost = 0.0;
  int64_t buckets_used = 0;
};

/// Finds the partition of 1..n into at most `max_buckets` contiguous
/// buckets minimizing the sum of bucket costs, by the classical O(n^2 * B)
/// dynamic program (the engine behind SAP0/SAP1/A0/POINT-OPT construction,
/// and behind V-optimal [6]).
///
/// When `exact_buckets` is true the partition must use exactly
/// `max_buckets` buckets (requires max_buckets <= n).
///
/// `deadline` is checked at every row chunk and DP layer; an expired
/// deadline aborts the solve with DeadlineExceeded (the default Deadline
/// never expires and adds no clock reads).
RANGESYN_CANCELLABLE RANGESYN_DETERMINISTIC Result<IntervalDpResult>
SolveIntervalDp(int64_t n, int64_t max_buckets, const BucketCostFn& cost,
                bool exact_buckets = false,
                const Deadline& deadline = Deadline());

/// As above but returns, for every k in 1..max_buckets, the optimal
/// exactly-k-bucket solution. Used by storage-sweep experiments to avoid
/// recomputing the DP table per budget.
RANGESYN_CANCELLABLE RANGESYN_DETERMINISTIC
Result<std::vector<IntervalDpResult>> SolveIntervalDpAllK(
    int64_t n, int64_t max_buckets, const BucketCostFn& cost,
    const Deadline& deadline = Deadline());

}  // namespace rangesyn

#endif  // RANGESYN_HISTOGRAM_DP_H_
