#include "histogram/weighted_sap0.h"

#include <cmath>

#include "core/logging.h"
#include "core/mathutil.h"
#include "core/strings.h"
#include "histogram/dp.h"
#include "histogram/prefix_stats.h"
#include "obs/obs.h"

namespace rangesyn {
namespace {

/// cum[k] = sum over buckets j < k of width_j * avg_j.
std::vector<double> CumulativeMass(const Partition& partition,
                                   const std::vector<double>& avg) {
  std::vector<double> cum(static_cast<size_t>(partition.num_buckets()) + 1,
                          0.0);
  for (int64_t k = 0; k < partition.num_buckets(); ++k) {
    cum[static_cast<size_t>(k + 1)] =
        cum[static_cast<size_t>(k)] +
        static_cast<double>(partition.bucket_width(k)) *
            avg[static_cast<size_t>(k)];
  }
  return cum;
}

Status ValidateWeights(int64_t n, const RangeWorkloadWeights& weights) {
  if (static_cast<int64_t>(weights.alpha.size()) != n ||
      static_cast<int64_t>(weights.beta.size()) != n) {
    return InvalidArgumentError("weights size != data size");
  }
  for (int64_t i = 0; i < n; ++i) {
    if (!(weights.alpha[static_cast<size_t>(i)] > 0.0) ||
        !(weights.beta[static_cast<size_t>(i)] > 0.0)) {
      return InvalidArgumentError(
          StrCat("weights must be positive (index ", i, ")"));
    }
  }
  return OkStatus();
}

}  // namespace

RangeWorkloadWeights RangeWorkloadWeights::Uniform(int64_t n) {
  RANGESYN_CHECK_GE(n, 1);
  return {std::vector<double>(static_cast<size_t>(n), 1.0),
          std::vector<double>(static_cast<size_t>(n), 1.0)};
}

Result<RangeWorkloadWeights> RangeWorkloadWeights::FromQueries(
    int64_t n, const std::vector<RangeQuery>& queries, double smoothing) {
  if (n < 1) return InvalidArgumentError("FromQueries: n >= 1");
  if (smoothing <= 0.0) {
    return InvalidArgumentError("FromQueries: smoothing must be > 0");
  }
  RangeWorkloadWeights out;
  out.alpha.assign(static_cast<size_t>(n), smoothing);
  out.beta.assign(static_cast<size_t>(n), smoothing);
  for (const RangeQuery& q : queries) {
    if (q.a < 1 || q.a > q.b || q.b > n) {
      return InvalidArgumentError(
          StrCat("FromQueries: bad query [", q.a, ",", q.b, "]"));
    }
    out.alpha[static_cast<size_t>(q.a - 1)] += 1.0;
    out.beta[static_cast<size_t>(q.b - 1)] += 1.0;
  }
  return out;
}

// ------------------------------------------------------- WeightedSap0Costs

Result<WeightedSap0Costs> WeightedSap0Costs::Create(
    const std::vector<int64_t>& data, RangeWorkloadWeights weights) {
  const int64_t n = static_cast<int64_t>(data.size());
  if (n < 1) return InvalidArgumentError("WeightedSap0Costs: empty data");
  RANGESYN_RETURN_IF_ERROR(ValidateWeights(n, weights));
  WeightedSap0Costs out;
  out.n_ = n;
  out.p_.assign(static_cast<size_t>(n) + 1, 0);
  for (int64_t i = 1; i <= n; ++i) {
    const int64_t v = data[static_cast<size_t>(i - 1)];
    if (v < 0) {
      return InvalidArgumentError("WeightedSap0Costs: negative count");
    }
    out.p_[static_cast<size_t>(i)] = out.p_[static_cast<size_t>(i - 1)] + v;
  }
  out.weights_ = std::move(weights);
  out.cum_a_.assign(static_cast<size_t>(n) + 1, 0.0);
  out.cum_b_.assign(static_cast<size_t>(n) + 1, 0.0);
  out.cum_ap_.assign(static_cast<size_t>(n) + 1, 0.0);
  out.cum_ap2_.assign(static_cast<size_t>(n) + 1, 0.0);
  out.cum_bp_.assign(static_cast<size_t>(n) + 1, 0.0);
  out.cum_bp2_.assign(static_cast<size_t>(n) + 1, 0.0);
  for (int64_t i = 1; i <= n; ++i) {
    const size_t k = static_cast<size_t>(i);
    const double a = out.weights_.alpha[k - 1];
    const double b = out.weights_.beta[k - 1];
    const double p_before = static_cast<double>(out.p_[k - 1]);
    const double p_at = static_cast<double>(out.p_[k]);
    out.cum_a_[k] = out.cum_a_[k - 1] + a;
    out.cum_b_[k] = out.cum_b_[k - 1] + b;
    out.cum_ap_[k] = out.cum_ap_[k - 1] + a * p_before;
    out.cum_ap2_[k] = out.cum_ap2_[k - 1] + a * p_before * p_before;
    out.cum_bp_[k] = out.cum_bp_[k - 1] + b * p_at;
    out.cum_bp2_[k] = out.cum_bp2_[k - 1] + b * p_at * p_at;
  }
  return out;
}

double WeightedSap0Costs::WeightedSuffixValue(int64_t l, int64_t r) const {
  RANGESYN_DCHECK(l >= 1 && l <= r && r <= n_);
  // y_a = s[a,r] = P[r] - P[a-1], weighted by alpha over a in [l, r].
  const double pr = static_cast<double>(p_[static_cast<size_t>(r)]);
  const double wa = cum_a_[static_cast<size_t>(r)] -
                    cum_a_[static_cast<size_t>(l - 1)];
  const double way = wa * pr - (cum_ap_[static_cast<size_t>(r)] -
                                cum_ap_[static_cast<size_t>(l - 1)]);
  return way / wa;
}

double WeightedSap0Costs::WeightedPrefixValue(int64_t l, int64_t r) const {
  RANGESYN_DCHECK(l >= 1 && l <= r && r <= n_);
  // z_b = s[l,b] = P[b] - P[l-1], weighted by beta over b in [l, r].
  const double pl1 = static_cast<double>(p_[static_cast<size_t>(l - 1)]);
  const double wb = cum_b_[static_cast<size_t>(r)] -
                    cum_b_[static_cast<size_t>(l - 1)];
  const double wbz = (cum_bp_[static_cast<size_t>(r)] -
                      cum_bp_[static_cast<size_t>(l - 1)]) -
                     wb * pl1;
  return wbz / wb;
}

double WeightedSap0Costs::Cost(int64_t l, int64_t r) const {
  RANGESYN_DCHECK(l >= 1 && l <= r && r <= n_);
  const double pr = static_cast<double>(p_[static_cast<size_t>(r)]);
  const double pl1 = static_cast<double>(p_[static_cast<size_t>(l - 1)]);
  const double m = static_cast<double>(r - l + 1);
  const double mu = (pr - pl1) / m;

  // Weighted variance of the suffix sums.
  const double wa = cum_a_[static_cast<size_t>(r)] -
                    cum_a_[static_cast<size_t>(l - 1)];
  const double sum_ap = cum_ap_[static_cast<size_t>(r)] -
                        cum_ap_[static_cast<size_t>(l - 1)];
  const double sum_ap2 = cum_ap2_[static_cast<size_t>(r)] -
                         cum_ap2_[static_cast<size_t>(l - 1)];
  const double way = wa * pr - sum_ap;
  const double way2 = wa * pr * pr - 2.0 * pr * sum_ap + sum_ap2;
  const double wvar_suffix = std::fmax(0.0, way2 - way * way / wa);

  // Weighted variance of the prefix sums.
  const double wb = cum_b_[static_cast<size_t>(r)] -
                    cum_b_[static_cast<size_t>(l - 1)];
  const double sum_bp = cum_bp_[static_cast<size_t>(r)] -
                        cum_bp_[static_cast<size_t>(l - 1)];
  const double sum_bp2 = cum_bp2_[static_cast<size_t>(r)] -
                         cum_bp2_[static_cast<size_t>(l - 1)];
  const double wbz = sum_bp - wb * pl1;
  const double wbz2 = sum_bp2 - 2.0 * pl1 * sum_bp + wb * pl1 * pl1;
  const double wvar_prefix = std::fmax(0.0, wbz2 - wbz * wbz / wb);

  const double beta_after = cum_b_[static_cast<size_t>(n_)] -
                            cum_b_[static_cast<size_t>(r)];
  const double alpha_before = cum_a_[static_cast<size_t>(l - 1)];

  // Weighted intra-bucket SSE: errors are Q[b] - Q[a-1] with
  // Q[t] = P[t] - mu*t; scan b once keeping alpha-weighted moments of the
  // Q[a-1] seen so far (O(width)).
  double intra = 0.0;
  double s0 = 0.0, s1 = 0.0, s2 = 0.0;
  for (int64_t b = l; b <= r; ++b) {
    const double qx =
        static_cast<double>(p_[static_cast<size_t>(b - 1)]) -
        mu * static_cast<double>(b - 1);
    const double a_w = weights_.alpha[static_cast<size_t>(b - 1)];
    s0 += a_w;
    s1 += a_w * qx;
    s2 += a_w * qx * qx;
    const double qb = static_cast<double>(p_[static_cast<size_t>(b)]) -
                      mu * static_cast<double>(b);
    intra += weights_.beta[static_cast<size_t>(b - 1)] *
             (qb * qb * s0 - 2.0 * qb * s1 + s2);
  }
  return std::fmax(0.0, intra) + beta_after * wvar_suffix +
         alpha_before * wvar_prefix;
}

// --------------------------------------------------- WeightedSap0Histogram

WeightedSap0Histogram::WeightedSap0Histogram(Partition partition,
                                             std::vector<double> suff,
                                             std::vector<double> pref,
                                             std::vector<double> avg)
    : partition_(std::move(partition)),
      cum_mass_(CumulativeMass(partition_, avg)),
      suff_(std::move(suff)),
      pref_(std::move(pref)),
      avg_(std::move(avg)) {}

Result<WeightedSap0Histogram> WeightedSap0Histogram::Build(
    const std::vector<int64_t>& data, Partition partition,
    const RangeWorkloadWeights& weights) {
  if (static_cast<int64_t>(data.size()) != partition.n()) {
    return InvalidArgumentError("WeightedSap0: data size != partition n");
  }
  RANGESYN_ASSIGN_OR_RETURN(WeightedSap0Costs costs,
                            WeightedSap0Costs::Create(data, weights));
  PrefixStats stats(data);
  const int64_t num_buckets = partition.num_buckets();
  std::vector<double> suff(static_cast<size_t>(num_buckets));
  std::vector<double> pref(static_cast<size_t>(num_buckets));
  std::vector<double> avg(static_cast<size_t>(num_buckets));
  for (int64_t k = 0; k < num_buckets; ++k) {
    const int64_t l = partition.bucket_start(k);
    const int64_t r = partition.bucket_end(k);
    suff[static_cast<size_t>(k)] = costs.WeightedSuffixValue(l, r);
    pref[static_cast<size_t>(k)] = costs.WeightedPrefixValue(l, r);
    avg[static_cast<size_t>(k)] =
        static_cast<double>(stats.Sum(l, r)) /
        static_cast<double>(r - l + 1);
  }
  return WeightedSap0Histogram(std::move(partition), std::move(suff),
                               std::move(pref), std::move(avg));
}

Result<WeightedSap0Histogram> WeightedSap0Histogram::FromSummaries(
    Partition partition, std::vector<double> suffixes,
    std::vector<double> prefixes, std::vector<double> averages) {
  const size_t num_buckets = static_cast<size_t>(partition.num_buckets());
  if (suffixes.size() != num_buckets || prefixes.size() != num_buckets ||
      averages.size() != num_buckets) {
    return InvalidArgumentError("WeightedSap0::FromSummaries: size mismatch");
  }
  return WeightedSap0Histogram(std::move(partition), std::move(suffixes),
                               std::move(prefixes), std::move(averages));
}

double WeightedSap0Histogram::EstimateRange(int64_t a, int64_t b) const {
  RANGESYN_DCHECK(a >= 1 && a <= b && b <= partition_.n());
  const int64_t ka = partition_.BucketOf(a);
  const int64_t kb = partition_.BucketOf(b);
  if (ka == kb) {
    return static_cast<double>(b - a + 1) * avg_[static_cast<size_t>(ka)];
  }
  return suff_[static_cast<size_t>(ka)] + MiddleMass(ka, kb) +
         pref_[static_cast<size_t>(kb)];
}

Result<WeightedSap0Histogram> BuildWeightedSap0(
    const std::vector<int64_t>& data, int64_t buckets,
    const RangeWorkloadWeights& weights) {
  if (buckets < 1) {
    return InvalidArgumentError("BuildWeightedSap0: buckets >= 1");
  }
  RANGESYN_OBS_SPAN("histogram.sap0w.build");
  RANGESYN_ASSIGN_OR_RETURN(WeightedSap0Costs costs,
                            WeightedSap0Costs::Create(data, weights));
  // Cost() is the O(width) inner kernel of the O(n^2 B) DP; count calls
  // locally and flush once so the hot loop stays atomic-free.
  uint64_t cost_evals = 0;
  RANGESYN_ASSIGN_OR_RETURN(
      IntervalDpResult dp,
      SolveIntervalDp(costs.n(), buckets,
                      [&costs, &cost_evals](int64_t l, int64_t r) {
                        ++cost_evals;
                        return costs.Cost(l, r);
                      }));
  RANGESYN_OBS_COUNTER_ADD("histogram.sap0w.cost_evals", cost_evals);
  Result<WeightedSap0Histogram> hist =
      WeightedSap0Histogram::Build(data, dp.partition, weights);
#ifdef RANGESYN_AUDIT
  // The weighted Decomposition-Lemma identity: the DP's additive bucket
  // costs must re-sum to the direct O(n²)-summed weighted all-ranges SSE
  // of the histogram actually built. Gated on domain size — the direct
  // summation is quadratic and this hook runs on every build.
  constexpr int64_t kMaxAuditN = 48;
  if (hist.ok() && costs.n() <= kMaxAuditN) {
    Result<double> direct = WeightedRangeSse(data, hist.value(), weights);
    RANGESYN_CHECK(direct.ok()) << direct.status().message();
    RANGESYN_CHECK(AlmostEqual(dp.cost, direct.value(), 1e-7, 1e-6))
        << "weighted SAP0 audit: DP cost " << dp.cost
        << " != direct weighted all-ranges SSE " << direct.value();
  }
#endif
  return hist;
}

Result<double> WeightedRangeSse(const std::vector<int64_t>& data,
                                const RangeEstimator& estimator,
                                const RangeWorkloadWeights& weights) {
  const int64_t n = static_cast<int64_t>(data.size());
  if (estimator.domain_size() != n) {
    return InvalidArgumentError("WeightedRangeSse: domain mismatch");
  }
  RANGESYN_RETURN_IF_ERROR(ValidateWeights(n, weights));
  PrefixStats stats(data);
  double sse = 0.0;
  for (int64_t a = 1; a <= n; ++a) {
    for (int64_t b = a; b <= n; ++b) {
      const double err = static_cast<double>(stats.Sum(a, b)) -
                         estimator.EstimateRange(a, b);
      sse += weights.WeightOf(a, b) * err * err;
    }
  }
  return sse;
}

}  // namespace rangesyn
