#include "histogram/partition.h"

#include <algorithm>

#include "core/logging.h"
#include "core/strings.h"

namespace rangesyn {

Result<Partition> Partition::FromEnds(int64_t n, std::vector<int64_t> ends) {
  if (n < 1) return InvalidArgumentError("Partition: n must be >= 1");
  if (ends.empty()) {
    return InvalidArgumentError("Partition: need at least one bucket");
  }
  int64_t prev = 0;
  for (int64_t e : ends) {
    if (e <= prev || e > n) {
      return InvalidArgumentError(
          StrCat("Partition: endpoints must be strictly increasing in [1,",
                 n, "]"));
    }
    prev = e;
  }
  if (ends.back() != n) {
    return InvalidArgumentError("Partition: last endpoint must equal n");
  }
  return Partition(n, std::move(ends));
}

Partition Partition::Whole(int64_t n) {
  RANGESYN_CHECK_GE(n, 1);
  return Partition(n, {n});
}

Result<Partition> Partition::EquiWidth(int64_t n, int64_t buckets) {
  if (n < 1) return InvalidArgumentError("EquiWidth: n must be >= 1");
  if (buckets < 1) return InvalidArgumentError("EquiWidth: buckets >= 1");
  const int64_t b = std::min(buckets, n);
  std::vector<int64_t> ends;
  ends.reserve(static_cast<size_t>(b));
  for (int64_t k = 1; k <= b; ++k) {
    // Round so the widths differ by at most one.
    ends.push_back((n * k) / b);
  }
  // Deduplicate in case of extreme ratios (cannot happen for b <= n, but be
  // defensive).
  ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
  return Partition(n, std::move(ends));
}

int64_t Partition::BucketOf(int64_t i) const {
  RANGESYN_DCHECK(i >= 1 && i <= n_);
  const auto it = std::lower_bound(ends_.begin(), ends_.end(), i);
  return static_cast<int64_t>(it - ends_.begin());
}

void ForEachPartition(int64_t n, int64_t buckets,
                      const std::function<void(const Partition&)>& fn) {
  RANGESYN_CHECK_GE(n, 1);
  RANGESYN_CHECK_GE(buckets, 1);
  RANGESYN_CHECK_LE(buckets, n);
  // Choose buckets-1 interior endpoints from 1..n-1 in increasing order.
  std::vector<int64_t> interior(static_cast<size_t>(buckets - 1));
  std::function<void(int64_t, int64_t)> rec = [&](int64_t idx, int64_t lo) {
    if (idx == buckets - 1) {
      std::vector<int64_t> ends(interior.begin(), interior.end());
      ends.push_back(n);
      auto part = Partition::FromEnds(n, std::move(ends));
      RANGESYN_CHECK(part.ok());
      fn(part.value());
      return;
    }
    // Leave room for the remaining interior endpoints.
    for (int64_t e = lo; e <= n - (buckets - 1 - idx); ++e) {
      interior[static_cast<size_t>(idx)] = e;
      rec(idx + 1, e + 1);
    }
  };
  rec(0, 1);
}

}  // namespace rangesyn
