#ifndef RANGESYN_HISTOGRAM_QUADRATIC_FIT_H_
#define RANGESYN_HISTOGRAM_QUADRATIC_FIT_H_

#include <cstdint>

namespace rangesyn {

/// Least-squares fit y ≈ c0 + c1·x + c2·x² from the raw moments of the
/// sample — the primitive behind the SAP2 histogram's O(1) bucket costs.
/// All moments are over the same m >= 1 points.
struct QuadraticFit {
  double c0 = 0.0;
  double c1 = 0.0;
  double c2 = 0.0;
  /// Residual sum of squares of the fit (>= 0, clamped).
  double ssr = 0.0;

  double At(double x) const { return c0 + c1 * x + c2 * x * x; }
};

/// Computes the fit from Σ1=m, Σx, Σx², Σx³, Σx⁴, Σy, Σxy, Σx²y, Σy².
/// Degenerate sample sizes (m <= 2, or collinear moments) gracefully fall
/// back to the exact lower-degree interpolant with ssr = 0 when the data
/// admits one.
QuadraticFit FitQuadraticFromMoments(double m, double sx, double sx2,
                                     double sx3, double sx4, double sy,
                                     double sxy, double sx2y, double sy2);

}  // namespace rangesyn

#endif  // RANGESYN_HISTOGRAM_QUADRATIC_FIT_H_
