#ifndef RANGESYN_HISTOGRAM_BUILDERS_H_
#define RANGESYN_HISTOGRAM_BUILDERS_H_

#include <cstdint>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/deadline.h"
#include "core/result.h"
#include "histogram/histogram.h"

namespace rangesyn {

/// Builders for the histogram family. Each takes the attribute-value
/// distribution `data` (A[i] = data[i-1], non-negative counts) and a bucket
/// count `buckets`, and chooses boundaries per its construction rule.
/// See DESIGN.md §2 for the estimator matrix.
///
/// The DP-backed builders accept an optional cooperative `deadline`
/// (checked per DP row chunk); expiry fails the build with
/// DeadlineExceeded, which the engine factory's fallback ladder converts
/// into a cheaper construction (DESIGN.md §9). The near-linear builders
/// (equi-*, maxdiff, naive) are the ladder's final rungs and take none.

/// SAP0 (paper Theorem 6): exactly range-optimal for its 3-words-per-bucket
/// representation, O(n^2 B) time via the Decomposition Lemma.
RANGESYN_CANCELLABLE Result<Sap0Histogram> BuildSap0(const std::vector<int64_t>& data,
                                int64_t buckets,
                                const Deadline& deadline = Deadline());

/// SAP1 (paper Theorem 8): exactly range-optimal for its 5-words-per-bucket
/// representation, O(n^2 B) time.
RANGESYN_CANCELLABLE Result<Sap1Histogram> BuildSap1(const std::vector<int64_t>& data,
                                int64_t buckets,
                                const Deadline& deadline = Deadline());

/// SAP2 (this library's extension of §2.2.2): exactly range-optimal for
/// its 7-words-per-bucket quadratic representation, O(n^2 B) time.
RANGESYN_CANCELLABLE Result<Sap2Histogram> BuildSap2(const std::vector<int64_t>& data,
                                int64_t buckets,
                                const Deadline& deadline = Deadline());

/// A0 heuristic (paper §4): average-only representation; the DP minimizes
/// the cost with the cross term dropped, so the result is near- but not
/// exactly optimal for the OPT-A representation.
RANGESYN_CANCELLABLE Result<AvgHistogram> BuildA0(const std::vector<int64_t>& data,
                             int64_t buckets,
                             PieceRounding rounding = PieceRounding::kPerPiece,
                             const Deadline& deadline = Deadline());

/// POINT-OPT (paper §4): V-optimal [6] with point weights i(n-i+1).
RANGESYN_CANCELLABLE Result<AvgHistogram> BuildPointOpt(const std::vector<int64_t>& data,
                                   int64_t buckets,
                                   PieceRounding rounding =
                                       PieceRounding::kPerPiece,
                                   const Deadline& deadline = Deadline());

/// Classical (unweighted) V-optimal histogram of [6].
RANGESYN_CANCELLABLE Result<AvgHistogram> BuildVOptimal(const std::vector<int64_t>& data,
                                   int64_t buckets,
                                   PieceRounding rounding =
                                       PieceRounding::kPerPiece,
                                   const Deadline& deadline = Deadline());

/// Equal-width buckets with true bucket averages.
Result<AvgHistogram> BuildEquiWidth(const std::vector<int64_t>& data,
                                    int64_t buckets,
                                    PieceRounding rounding =
                                        PieceRounding::kPerPiece);

/// Equi-depth (equal mass per bucket) with true bucket averages.
Result<AvgHistogram> BuildEquiDepth(const std::vector<int64_t>& data,
                                    int64_t buckets,
                                    PieceRounding rounding =
                                        PieceRounding::kPerPiece);

/// MaxDiff: boundaries at the buckets-1 largest adjacent differences
/// |A[i+1] - A[i]|.
Result<AvgHistogram> BuildMaxDiff(const std::vector<int64_t>& data,
                                  int64_t buckets,
                                  PieceRounding rounding =
                                      PieceRounding::kPerPiece);

/// PREFIX-OPT: optimal for the *hierarchical/prefix* query family [1, b]
/// only — the restricted setting earlier work solved optimally (paper
/// §1: "previously known results were optimal only for ... hierarchical
/// or prefix range queries"). Under eq.(1) answering the prefix error of
/// query [1, b] is exactly the right-piece error v'_b, so the bucket cost
/// is Σ v'² and the O(n²B) DP is exactly prefix-optimal. Evaluating this
/// histogram on *all* ranges demonstrates why prefix-optimality is not
/// range-optimality.
RANGESYN_CANCELLABLE Result<AvgHistogram> BuildPrefixOpt(const std::vector<int64_t>& data,
                                    int64_t buckets,
                                    PieceRounding rounding =
                                        PieceRounding::kNone,
                                    const Deadline& deadline = Deadline());

/// The single-value NAIVE synopsis.
Result<NaiveEstimator> BuildNaive(const std::vector<int64_t>& data);

}  // namespace rangesyn

#endif  // RANGESYN_HISTOGRAM_BUILDERS_H_
