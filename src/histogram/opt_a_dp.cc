#include "histogram/opt_a_dp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>

#include "core/failpoint.h"
#include "core/logging.h"
#include "core/mathutil.h"
#include "core/strings.h"
#include "core/threadpool.h"
#include "histogram/builders.h"
#include "histogram/prefix_stats.h"
#include "obs/obs.h"

namespace rangesyn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-bucket statistics of the rounded eq.(1) answering rule, precomputed
/// for every candidate bucket [l, r] in O(n^3) total time (DESIGN.md §3.1):
///   intra  = sum over ranges inside the bucket of (s[a,b]-⟦len*mu⟧)^2
///   su/su2 = sum (and sum of squares) of left-piece errors
///            u_a = s[a,r] - ⟦(r-a+1)*mu⟧          (integers)
///   sv/sv2 = sum (and sum of squares) of right-piece errors
///            v_b = s[l,b] - ⟦(b-l+1)*mu⟧          (integers)
/// All rounding is RoundHalfToEven on the identical floating expression the
/// AvgHistogram uses at query time, so DP accounting and query answering
/// agree bit-for-bit.
class BucketTables {
 public:
  /// Chunks of the O(n^3) fill observe `deadline` and return early once it
  /// expires; the caller must re-check the deadline after construction and
  /// discard the (partially filled) tables on expiry.
  BucketTables(const std::vector<int64_t>& data, const Deadline& deadline)
      : n_(static_cast<int64_t>(data.size())), stats_(data) {
    RANGESYN_OBS_SPAN("histogram.opta.prefix_tables");
    const size_t tri = static_cast<size_t>(n_) * (n_ + 1) / 2;
    intra_.resize(tri);
    su_.resize(tri);
    su2_.resize(tri);
    sv_.resize(tri);
    sv2_.resize(tri);

    // Window prefix sums: for each length len, cw[len][a] = sum over
    // windows starting at <= a of s[start, start+len-1], cw2 the squares.
    std::vector<std::vector<double>> cw(static_cast<size_t>(n_) + 1);
    std::vector<std::vector<double>> cw2(static_cast<size_t>(n_) + 1);
    // Each window length's prefix array is independent; so is each row l
    // of the per-bucket tables below. All writes are index-disjoint, so
    // the parallel fill is bit-identical to the serial one.
    ParallelFor(1, n_ + 1, /*grain=*/8, [&](int64_t lo, int64_t hi) {
      if (deadline.Expired()) return;
      for (int64_t len = lo; len < hi; ++len) {
        const int64_t count = n_ - len + 1;
        auto& c = cw[static_cast<size_t>(len)];
        auto& c2 = cw2[static_cast<size_t>(len)];
        c.assign(static_cast<size_t>(count) + 1, 0.0);
        c2.assign(static_cast<size_t>(count) + 1, 0.0);
        for (int64_t a = 1; a <= count; ++a) {
          const double w = static_cast<double>(stats_.Sum(a, a + len - 1));
          c[static_cast<size_t>(a)] = c[static_cast<size_t>(a - 1)] + w;
          c2[static_cast<size_t>(a)] =
              c2[static_cast<size_t>(a - 1)] + w * w;
        }
      }
    });

    ParallelFor(1, n_ + 1, /*grain=*/1, [&](int64_t l_lo, int64_t l_hi) {
      if (deadline.Expired()) return;
      for (int64_t l = l_lo; l < l_hi; ++l) {
        for (int64_t r = l; r <= n_; ++r) {
          const size_t idx = Index(l, r);
          const int64_t m = r - l + 1;
          const int64_t sum = stats_.Sum(l, r);
          const double mu =
              static_cast<double>(sum) / static_cast<double>(m);

          // Intra-bucket SSE, grouped by range length: the rounded answer
          // ⟦len*mu⟧ is constant per length.
          double intra = 0.0;
          for (int64_t len = 1; len <= m; ++len) {
            const double t = static_cast<double>(
                RoundHalfToEven(static_cast<double>(len) * mu));
            const int64_t lo = l;          // first window start inside bucket
            const int64_t hi = r - len + 1;  // last window start
            const auto& c = cw[static_cast<size_t>(len)];
            const auto& c2 = cw2[static_cast<size_t>(len)];
            const double s1 = c[static_cast<size_t>(hi)] -
                              c[static_cast<size_t>(lo - 1)];
            const double s2 = c2[static_cast<size_t>(hi)] -
                              c2[static_cast<size_t>(lo - 1)];
            const double cnt = static_cast<double>(hi - lo + 1);
            intra += s2 - 2.0 * t * s1 + cnt * t * t;
          }
          intra_[idx] = intra;

          int64_t su = 0, sv = 0;
          double su2 = 0.0, sv2 = 0.0;
          for (int64_t a = l; a <= r; ++a) {
            const int64_t u =
                stats_.Sum(a, r) -
                RoundHalfToEven(static_cast<double>(r - a + 1) * mu);
            su += u;
            su2 += static_cast<double>(u) * static_cast<double>(u);
          }
          for (int64_t b = l; b <= r; ++b) {
            const int64_t v =
                stats_.Sum(l, b) -
                RoundHalfToEven(static_cast<double>(b - l + 1) * mu);
            sv += v;
            sv2 += static_cast<double>(v) * static_cast<double>(v);
          }
          su_[idx] = su;
          su2_[idx] = su2;
          sv_[idx] = sv;
          sv2_[idx] = sv2;
        }
      }
    });
    RANGESYN_OBS_COUNTER_ADD("histogram.opta.bucket_evals", tri);
  }

  int64_t n() const { return n_; }
  const PrefixStats& stats() const { return stats_; }

  double Intra(int64_t l, int64_t r) const { return intra_[Index(l, r)]; }
  int64_t SumU(int64_t l, int64_t r) const { return su_[Index(l, r)]; }
  double SumU2(int64_t l, int64_t r) const { return su2_[Index(l, r)]; }
  int64_t SumV(int64_t l, int64_t r) const { return sv_[Index(l, r)]; }
  double SumV2(int64_t l, int64_t r) const { return sv2_[Index(l, r)]; }

  /// The λ-independent part of the improved DP's bucket cost:
  ///   intra + (n-r)*Σu² + (l-1)*Σv².
  double K(int64_t l, int64_t r) const {
    const size_t idx = Index(l, r);
    return intra_[idx] + static_cast<double>(n_ - r) * su2_[idx] +
           static_cast<double>(l - 1) * sv2_[idx];
  }

 private:
  size_t Index(int64_t l, int64_t r) const {
    RANGESYN_DCHECK(l >= 1 && l <= r && r <= n_);
    // Row-major upper triangle: row l occupies n-l+1 slots.
    const int64_t row_offset = (l - 1) * n_ - (l - 1) * (l - 2) / 2;
    return static_cast<size_t>(row_offset + (r - l));
  }

  int64_t n_;
  PrefixStats stats_;
  std::vector<double> intra_;
  std::vector<int64_t> su_;
  std::vector<double> su2_;
  std::vector<int64_t> sv_;
  std::vector<double> sv2_;
};

/// All-ranges SSE of an AvgHistogram by direct evaluation — used to derive
/// the admissible |Λ| cap from a cheap feasible solution.
double BruteSse(const std::vector<int64_t>& data, const AvgHistogram& hist) {
  PrefixStats stats(data);
  const int64_t n = stats.n();
  double sse = 0.0;
  for (int64_t a = 1; a <= n; ++a) {
    for (int64_t b = a; b <= n; ++b) {
      const double d = static_cast<double>(stats.Sum(a, b)) -
                       hist.EstimateRange(a, b);
      sse += d * d;
    }
  }
  return sse;
}

/// Upper bound on OPT for the OPT-A representation, from the A0 heuristic
/// (always a feasible OPT-A histogram). Falls back to NAIVE-in-one-bucket.
double OptUpperBound(const std::vector<int64_t>& data, int64_t max_buckets,
                     const Deadline& deadline = Deadline()) {
  Result<AvgHistogram> a0 =
      BuildA0(data, max_buckets, PieceRounding::kPerPiece, deadline);
  if (a0.ok()) return BruteSse(data, a0.value());
  Result<AvgHistogram> whole = AvgHistogram::WithTrueAverages(
      data, Partition::Whole(static_cast<int64_t>(data.size())), "UB",
      PieceRounding::kPerPiece);
  RANGESYN_CHECK(whole.ok());
  return BruteSse(data, whole.value());
}

struct Entry {
  double cost = kInf;
  int64_t j = -1;  // end of previous bucket in the best predecessor
};

/// One DP state in the flattened cell representation of the improved
/// algorithm: partitions of [1, i] into exactly k buckets with piece-error
/// sum Λ = lambda, at minimum committed cost.
struct LambdaState {
  int64_t lambda = 0;
  double cost = kInf;
  int32_t j = -1;
};

/// Bounds on the cross-sum V = Σ over future buckets of Σv, achievable by
/// any partition of the suffix (i, n] into at most r buckets. Used for the
/// admissible dominance prune: the future cost of a state is
/// (λ-independent terms shared by all states) + 2λV, linear in V, so a
/// state dominated at both V endpoints can never beat its dominator.
class SuffixCrossBounds {
 public:
  /// Like BucketTables, chunks return early once `deadline` expires; the
  /// caller re-checks afterwards.
  SuffixCrossBounds(const BucketTables& tables, int64_t max_buckets,
                    const Deadline& deadline)
      : n_(tables.n()), max_b_(max_buckets) {
    const size_t rows = static_cast<size_t>(max_b_) + 1;
    const size_t cols = static_cast<size_t>(n_) + 1;
    min_v_.assign(rows, std::vector<double>(cols, kInf));
    max_v_.assign(rows, std::vector<double>(cols, -kInf));
    for (int64_t r = 0; r <= max_b_; ++r) {
      min_v_[static_cast<size_t>(r)][static_cast<size_t>(n_)] = 0.0;
      max_v_[static_cast<size_t>(r)][static_cast<size_t>(n_)] = 0.0;
    }
    // Layer r reads only layer r-1, so its cells fill in parallel over i
    // (index-disjoint writes; bit-identical to the serial backward sweep).
    for (int64_t r = 1; r <= max_b_; ++r) {
      ParallelFor(0, n_, /*grain=*/8, [&](int64_t i_lo, int64_t i_hi) {
        if (deadline.Expired()) return;
        for (int64_t i = i_lo; i < i_hi; ++i) {
          double lo =
              min_v_[static_cast<size_t>(r - 1)][static_cast<size_t>(i)];
          double hi =
              max_v_[static_cast<size_t>(r - 1)][static_cast<size_t>(i)];
          for (int64_t e = i + 1; e <= n_; ++e) {
            const double sv = static_cast<double>(tables.SumV(i + 1, e));
            const double rest_lo =
                (e == n_) ? 0.0
                          : min_v_[static_cast<size_t>(r - 1)]
                                  [static_cast<size_t>(e)];
            const double rest_hi =
                (e == n_) ? 0.0
                          : max_v_[static_cast<size_t>(r - 1)]
                                  [static_cast<size_t>(e)];
            if (rest_lo != kInf) lo = std::min(lo, sv + rest_lo);
            if (rest_hi != -kInf) hi = std::max(hi, sv + rest_hi);
          }
          min_v_[static_cast<size_t>(r)][static_cast<size_t>(i)] = lo;
          max_v_[static_cast<size_t>(r)][static_cast<size_t>(i)] = hi;
        }
      });
    }
  }

  double MinV(int64_t i, int64_t remaining) const {
    return min_v_[static_cast<size_t>(std::min(remaining, max_b_))]
                 [static_cast<size_t>(i)];
  }
  double MaxV(int64_t i, int64_t remaining) const {
    return max_v_[static_cast<size_t>(std::min(remaining, max_b_))]
                 [static_cast<size_t>(i)];
  }

 private:
  int64_t n_;
  int64_t max_b_;
  // [r][i]: min/max achievable V over partitions of (i, n] into <= r
  // buckets (r >= 1 when i < n).
  std::vector<std::vector<double>> min_v_;
  std::vector<std::vector<double>> max_v_;
};

/// Keeps only states that can still be optimal for some achievable future
/// cross-sum V in [vmin, vmax]: the lower envelope of the lines
/// cost + 2λV. A state is dominated iff another state is no worse at both
/// endpoints (all arithmetic here is exact: every quantity is an integer
/// representable in a double for realistic volumes). The survivors are
/// returned sorted by lambda for O(log) parent lookup.
std::vector<LambdaState> PruneCell(std::vector<LambdaState> states,
                                   double vmin, double vmax) {
  if (states.size() > 1) {
    auto key1 = [vmin](const LambdaState& s) {
      return s.cost + 2.0 * static_cast<double>(s.lambda) * vmin;
    };
    auto key2 = [vmax](const LambdaState& s) {
      return s.cost + 2.0 * static_cast<double>(s.lambda) * vmax;
    };
    std::sort(states.begin(), states.end(),
              [&](const LambdaState& a, const LambdaState& b) {
                const double a1 = key1(a), b1 = key1(b);
                if (a1 != b1) return a1 < b1;
                return key2(a) < key2(b);
              });
    std::vector<LambdaState> kept;
    kept.reserve(states.size());
    double best2 = kInf;
    for (const LambdaState& s : states) {
      const double k2 = key2(s);
      if (k2 < best2) {
        kept.push_back(s);
        best2 = k2;
      }
    }
    states = std::move(kept);
  }
  std::sort(states.begin(), states.end(),
            [](const LambdaState& a, const LambdaState& b) {
              return a.lambda < b.lambda;
            });
  return states;
}

/// Binary search for the state with the given lambda; CHECK-fails if
/// absent (reconstruction only follows edges out of surviving states).
const LambdaState& FindState(const std::vector<LambdaState>& cell,
                             int64_t lambda) {
  auto it = std::lower_bound(
      cell.begin(), cell.end(), lambda,
      [](const LambdaState& s, int64_t l) { return s.lambda < l; });
  RANGESYN_CHECK(it != cell.end() && it->lambda == lambda)
      << "OPT-A reconstruction: missing parent state";
  return *it;
}

Status ValidateOptAInput(const std::vector<int64_t>& data,
                         int64_t max_buckets) {
  if (data.empty()) return InvalidArgumentError("OPT-A: empty data");
  if (max_buckets < 1) return InvalidArgumentError("OPT-A: buckets >= 1");
  for (size_t i = 0; i < data.size(); ++i) {
    if (data[i] < 0) {
      return InvalidArgumentError(
          StrCat("OPT-A: negative count at index ", i));
    }
  }
  return OkStatus();
}

Result<OptAResult> FinishOptA(const std::vector<int64_t>& data,
                              std::vector<int64_t> ends, double optimal_sse,
                              uint64_t states) {
  const int64_t n = static_cast<int64_t>(data.size());
  RANGESYN_ASSIGN_OR_RETURN(Partition partition,
                            Partition::FromEnds(n, std::move(ends)));
  const int64_t buckets_used = partition.num_buckets();
  RANGESYN_ASSIGN_OR_RETURN(
      AvgHistogram hist,
      AvgHistogram::WithTrueAverages(data, std::move(partition), "OPT-A",
                                     PieceRounding::kPerPiece));
  OptAResult out{std::move(hist), optimal_sse, buckets_used, states};
  return out;
}

}  // namespace

Result<OptAResult> BuildOptA(const std::vector<int64_t>& data,
                             const OptAOptions& options) {
  RANGESYN_RETURN_IF_ERROR(ValidateOptAInput(data, options.max_buckets));
  const int64_t n = static_cast<int64_t>(data.size());
  const int64_t max_b = std::min<int64_t>(options.max_buckets, n);
  if (options.exact_buckets && options.max_buckets > n) {
    return InvalidArgumentError("OPT-A: more buckets than elements");
  }
  RANGESYN_OBS_SPAN("histogram.opta.dp");
  // The O(n^2) per-bucket tables are OPT-A's dominant allocation; the
  // failpoint models it failing before any work is committed.
  RANGESYN_FAILPOINT("alloc.opta_tables");
  RANGESYN_RETURN_IF_DEADLINE(options.deadline, "histogram.opta.deadline",
                              "OPT-A bucket tables");
  BucketTables tables(data, options.deadline);
  RANGESYN_RETURN_IF_DEADLINE(options.deadline, "histogram.opta.deadline",
                              "OPT-A bucket tables");

  // Admissible Λ cap: on the optimal path, Σ u_l² never exceeds OPT
  // (each u_l is itself an intra-bucket range error), so
  // |Λ| <= Σ|u_l| <= sqrt(n * Σu²) <= sqrt(n * UB) for any upper bound UB.
  const int64_t lambda_cap =
      options.enable_lambda_cap
          ? static_cast<int64_t>(std::ceil(std::sqrt(
                static_cast<double>(n) *
                OptUpperBound(data, max_b, options.deadline)))) +
                1
          : std::numeric_limits<int64_t>::max();
  RANGESYN_RETURN_IF_DEADLINE(options.deadline, "histogram.opta.deadline",
                              "OPT-A upper bound");

  // Dominance prune support: bounds on the achievable future cross-sum.
  SuffixCrossBounds bounds(tables, max_b, options.deadline);
  RANGESYN_RETURN_IF_DEADLINE(options.deadline, "histogram.opta.deadline",
                              "OPT-A suffix bounds");

  // cells[k][i]: pruned, lambda-sorted states for exactly-k-bucket
  // partitions of [1, i].
  std::vector<std::vector<std::vector<LambdaState>>> cells(
      static_cast<size_t>(max_b) + 1,
      std::vector<std::vector<LambdaState>>(static_cast<size_t>(n) + 1));
  cells[0][0].push_back({0, 0.0, -1});
  uint64_t states = 1;

  // Layer k reads only the pruned cells of layer k-1, so its cells build
  // in parallel over the end index i. Each cell's pipeline is a pure
  // function of layer k-1: the per-cell map records the best entry per
  // lambda with ascending-j scan order and a strict '<' (ties keep the
  // lowest j), and the collected states are sorted by their unique lambda
  // key before pruning, so neither the thread count nor the map's
  // iteration order can change which states survive. State accounting
  // (and the budget check) happens serially in index order after each
  // layer, preserving the serial error behavior.
  for (int64_t k = 1; k <= max_b; ++k) {
    // At the last layer only terminal cells matter; for exact-buckets mode
    // intermediate layers never terminate, but their i=n cells are still
    // cheap and keep the code uniform.
    // The deadline is observed once per cell chunk; an expired chunk
    // returns DeadlineExceeded without building its cells, and
    // ParallelForStatus reports the first failure in chunk order.
    RANGESYN_RETURN_IF_ERROR(ParallelForStatus(
        k, n + 1, /*grain=*/1, [&](int64_t i_lo, int64_t i_hi) -> Status {
      RANGESYN_RETURN_IF_ERROR(options.deadline.Check("OPT-A layer"));
      std::unordered_map<int64_t, Entry> tmp;
      for (int64_t i = i_lo; i < i_hi; ++i) {
        if (k == max_b && i != n) continue;
        tmp.clear();
        for (int64_t j = k - 1; j < i; ++j) {
          const auto& src =
              cells[static_cast<size_t>(k - 1)][static_cast<size_t>(j)];
          if (src.empty()) continue;
          const int64_t l = j + 1;
          const int64_t du = tables.SumU(l, i);
          const double base = tables.K(l, i);
          const double sv2 = 2.0 * static_cast<double>(tables.SumV(l, i));
          for (const LambdaState& s : src) {
            const int64_t new_lambda = s.lambda + du;
            if (std::llabs(new_lambda) > lambda_cap) continue;
            const double cost =
                s.cost + base + static_cast<double>(s.lambda) * sv2;
            auto [it, inserted] =
                tmp.try_emplace(new_lambda, Entry{cost, j});
            if (!inserted && cost < it->second.cost) {
              it->second = Entry{cost, j};
            }
          }
        }
        if (tmp.empty()) continue;
        std::vector<LambdaState> cell;
        cell.reserve(tmp.size());
        // analyze: waive(SA-103) hash order cannot escape: the cell is
        // sorted by lambda immediately below before pruning or storage.
        for (const auto& [lambda, entry] : tmp) {
          cell.push_back(
              {lambda, entry.cost, static_cast<int32_t>(entry.j)});
        }
        // Deterministic pruning input regardless of hash-map order.
        std::sort(cell.begin(), cell.end(),
                  [](const LambdaState& a, const LambdaState& b) {
                    return a.lambda < b.lambda;
                  });
        const int64_t remaining = max_b - k;
        const double vmin = (i == n) ? 0.0 : bounds.MinV(i, remaining);
        const double vmax = (i == n) ? 0.0 : bounds.MaxV(i, remaining);
        // A cell with no feasible completion (i < n, remaining == 0) is
        // dead.
        if (i < n && (vmin == kInf || vmax == -kInf)) continue;
        if (options.enable_dominance_prune) {
          cell = PruneCell(std::move(cell), vmin, vmax);
        }
        cells[static_cast<size_t>(k)][static_cast<size_t>(i)] =
            std::move(cell);
      }
      return OkStatus();
    }));
    for (int64_t i = k; i <= n; ++i) {
      states +=
          cells[static_cast<size_t>(k)][static_cast<size_t>(i)].size();
      if (states > options.max_states) {
        return ResourceExhaustedError(StrCat(
            "OPT-A: state budget (", options.max_states,
            ") exceeded; use BuildOptARounded with a coarser granularity"));
      }
    }
  }

  // Pick the best terminal state over admissible bucket counts.
  double best_cost = kInf;
  int64_t best_k = -1;
  int64_t best_lambda = 0;
  const int64_t k_lo = options.exact_buckets ? max_b : 1;
  for (int64_t k = k_lo; k <= max_b; ++k) {
    RANGESYN_RETURN_IF_ERROR(options.deadline.Check("OPT-A terminal scan"));
    for (const LambdaState& s :
         cells[static_cast<size_t>(k)][static_cast<size_t>(n)]) {
      if (s.cost < best_cost) {
        best_cost = s.cost;
        best_k = k;
        best_lambda = s.lambda;
      }
    }
  }
  if (best_k < 0) {
    return InternalError("OPT-A: no terminal state (pruning too tight?)");
  }

  // Reconstruct boundaries by walking parents backward.
  std::vector<int64_t> ends;
  int64_t i = n;
  int64_t lambda = best_lambda;
  for (int64_t k = best_k; k >= 1; --k) {
    RANGESYN_RETURN_IF_ERROR(options.deadline.Check("OPT-A backtrack"));
    const LambdaState& s = FindState(
        cells[static_cast<size_t>(k)][static_cast<size_t>(i)], lambda);
    ends.push_back(i);
    lambda -= tables.SumU(s.j + 1, i);
    i = s.j;
  }
  RANGESYN_CHECK_EQ(i, 0);
  RANGESYN_CHECK_EQ(lambda, 0);
  std::reverse(ends.begin(), ends.end());
  RANGESYN_OBS_COUNTER_INC("histogram.opta.solves");
  RANGESYN_OBS_COUNTER_ADD("histogram.opta.states", states);
  return FinishOptA(data, std::move(ends), best_cost, states);
}

Result<OptAResult> BuildOptAWarmup(const std::vector<int64_t>& data,
                                   const OptAOptions& options) {
  RANGESYN_RETURN_IF_ERROR(ValidateOptAInput(data, options.max_buckets));
  const int64_t n = static_cast<int64_t>(data.size());
  const int64_t max_b = std::min<int64_t>(options.max_buckets, n);
  if (options.exact_buckets && options.max_buckets > n) {
    return InvalidArgumentError("OPT-A warm-up: more buckets than elements");
  }
  RANGESYN_OBS_SPAN("histogram.opta.warmup_dp");
  RANGESYN_FAILPOINT("alloc.opta_tables");
  RANGESYN_RETURN_IF_DEADLINE(options.deadline, "histogram.opta.deadline",
                              "OPT-A warm-up bucket tables");
  BucketTables tables(data, options.deadline);
  RANGESYN_RETURN_IF_DEADLINE(options.deadline, "histogram.opta.deadline",
                              "OPT-A warm-up bucket tables");

  // State key (Λ, Λ2); Λ2 = Σ u² is integral (sum of squared integers) and
  // is stored exactly as int64.
  struct Key {
    int64_t lambda;
    int64_t lambda2;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = static_cast<uint64_t>(k.lambda) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(k.lambda2) + 0x7f4a7c15ULL + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  using StateMap = std::unordered_map<Key, Entry, KeyHash>;

  std::vector<std::vector<StateMap>> layers(
      static_cast<size_t>(max_b) + 1,
      std::vector<StateMap>(static_cast<size_t>(n) + 1));
  layers[0][0].emplace(Key{0, 0}, Entry{0.0, -1});
  uint64_t states = 1;

  for (int64_t k = 1; k <= max_b; ++k) {
    for (int64_t j = k - 1; j < n; ++j) {
      RANGESYN_RETURN_IF_ERROR(options.deadline.Check("OPT-A warm-up"));
      const StateMap& src = layers[static_cast<size_t>(k - 1)]
                                  [static_cast<size_t>(j)];
      if (src.empty()) continue;
      // analyze: waive(SA-103) hash order cannot affect the result: for
      // fixed (j, i) the map key -> key + (SumU, SumU2) is injective, so
      // entries of one cell never collide in dst; collisions across cells
      // are min-merged under the deterministic outer j loop.
      for (const auto& [key, entry] : src) {
        const double lam = static_cast<double>(key.lambda);
        const double lam2 = static_cast<double>(key.lambda2);
        for (int64_t i = j + 1; i <= n; ++i) {
          const int64_t l = j + 1;
          // New queries with both endpoints <= i:
          //   intra + (i-j)*λ2 + 2λ*Σv + j*Σv².
          const double cost =
              entry.cost + tables.Intra(l, i) +
              static_cast<double>(i - j) * lam2 +
              2.0 * lam * static_cast<double>(tables.SumV(l, i)) +
              static_cast<double>(j) * tables.SumV2(l, i);
          const Key new_key{
              key.lambda + tables.SumU(l, i),
              key.lambda2 + static_cast<int64_t>(tables.SumU2(l, i))};
          StateMap& dst = layers[static_cast<size_t>(k)]
                                [static_cast<size_t>(i)];
          auto [it, inserted] = dst.try_emplace(new_key, Entry{cost, j});
          if (inserted) {
            if (++states > options.max_states) {
              return ResourceExhaustedError(
                  "OPT-A warm-up: state budget exceeded");
            }
          } else if (cost < it->second.cost) {
            it->second = Entry{cost, j};
          }
        }
      }
    }
  }

  double best_cost = kInf;
  int64_t best_k = -1;
  Key best_key{0, 0};
  const int64_t k_lo = options.exact_buckets ? max_b : 1;
  for (int64_t k = k_lo; k <= max_b; ++k) {
    RANGESYN_RETURN_IF_ERROR(
        options.deadline.Check("OPT-A warm-up terminal scan"));
    // analyze: waive(SA-103) min-selection with a total-order tie-break on
    // (cost, k, key); the winner is independent of hash iteration order.
    for (const auto& [key, entry] :
         layers[static_cast<size_t>(k)][static_cast<size_t>(n)]) {
      const bool tie =
          entry.cost == best_cost && k == best_k &&  // lint: float-eq-ok
          std::make_pair(key.lambda, key.lambda2) <
              std::make_pair(best_key.lambda, best_key.lambda2);
      if (entry.cost < best_cost || tie) {
        best_cost = entry.cost;
        best_k = k;
        best_key = key;
      }
    }
  }
  if (best_k < 0) return InternalError("OPT-A warm-up: no terminal state");

  std::vector<int64_t> ends;
  int64_t i = n;
  Key key = best_key;
  for (int64_t k = best_k; k >= 1; --k) {
    RANGESYN_RETURN_IF_ERROR(
        options.deadline.Check("OPT-A warm-up backtrack"));
    const StateMap& m =
        layers[static_cast<size_t>(k)][static_cast<size_t>(i)];
    const auto it = m.find(key);
    RANGESYN_CHECK(it != m.end());
    ends.push_back(i);
    const int64_t j = it->second.j;
    key.lambda -= tables.SumU(j + 1, i);
    key.lambda2 -= static_cast<int64_t>(tables.SumU2(j + 1, i));
    i = j;
  }
  RANGESYN_CHECK_EQ(i, 0);
  std::reverse(ends.begin(), ends.end());
  return FinishOptA(data, std::move(ends), best_cost, states);
}

Result<OptAResult> BuildOptARounded(const std::vector<int64_t>& data,
                                    const OptARoundedOptions& options) {
  if (options.granularity < 1) {
    return InvalidArgumentError("OPT-A-ROUNDED: granularity >= 1");
  }
  // Round entries to the nearest multiple of x, then divide through by x
  // (paper Definition 3).
  const double x = static_cast<double>(options.granularity);
  std::vector<int64_t> scaled(data.size());
  // analyze: waive(SA-105) O(n) rounding pass with an O(1) body; the inner
  // BuildOptA call immediately after observes the same deadline.
  for (size_t i = 0; i < data.size(); ++i) {
    scaled[i] = RoundHalfToEven(static_cast<double>(data[i]) / x);
    if (scaled[i] < 0) scaled[i] = 0;
  }
  OptAOptions inner;
  inner.max_buckets = options.max_buckets;
  inner.exact_buckets = options.exact_buckets;
  inner.max_states = options.max_states;
  inner.deadline = options.deadline;
  RANGESYN_ASSIGN_OR_RETURN(OptAResult rounded, BuildOptA(scaled, inner));

  // The DP objective on the scaled data, mapped back to original units.
  const double approx_sse = rounded.optimal_sse * x * x;

  if (options.refit_values) {
    RANGESYN_ASSIGN_OR_RETURN(
        AvgHistogram hist,
        AvgHistogram::WithTrueAverages(data, rounded.histogram.partition(),
                                       "OPT-A-ROUNDED",
                                       PieceRounding::kPerPiece));
    OptAResult out{std::move(hist), approx_sse, rounded.buckets_used,
                   rounded.states_explored};
    return out;
  }
  // Literal Definition 3: multiply the rounded-data averages through by x.
  std::vector<double> values = rounded.histogram.values();
  // analyze: waive(SA-105) O(B) scaling of final bucket values, after the
  // polled DP has already succeeded.
  for (double& v : values) v *= x;
  RANGESYN_ASSIGN_OR_RETURN(
      AvgHistogram hist,
      AvgHistogram::Create(rounded.histogram.partition(), std::move(values),
                           "OPT-A-ROUNDED", PieceRounding::kPerPiece));
  OptAResult out{std::move(hist), approx_sse, rounded.buckets_used,
                 rounded.states_explored};
  return out;
}

int64_t SuggestGranularity(const std::vector<int64_t>& data,
                           int64_t max_buckets, double epsilon) {
  RANGESYN_CHECK_GT(epsilon, 0.0);
  const int64_t n = static_cast<int64_t>(data.size());
  if (n == 0) return 1;
  const double ub = OptUpperBound(data, std::min<int64_t>(max_buckets, n));
  // Rounding by x perturbs s[a,b] by at most len*x/2; the aggregate SSE
  // perturbation over all ranges is bounded by (x^2/4) * Σ len² ≈ x²n⁴/48.
  // Choosing x so that this stays at most ε²·OPT keeps the result within
  // roughly (1+ε) of optimal.
  const double n4 = std::pow(static_cast<double>(n), 4.0) / 48.0;
  const double x = epsilon * std::sqrt(std::fmax(ub, 1.0) / n4);
  return std::max<int64_t>(1, static_cast<int64_t>(std::floor(x)));
}

}  // namespace rangesyn
