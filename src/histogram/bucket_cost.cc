#include "histogram/bucket_cost.h"

#include <cmath>

#include "core/logging.h"
#include "histogram/quadratic_fit.h"

namespace rangesyn {

BucketCosts::WindowQ BucketCosts::QMoments(int64_t x, int64_t y,
                                           double mu) const {
  WindowQ q;
  const double sum_p = stats_.SumP(x, y);
  const double sum_p2 = stats_.SumP2(x, y);
  const double sum_tp = stats_.SumTP(x, y);
  const double sum_t = PrefixStats::SumT(x, y);
  const double sum_t2 = PrefixStats::SumT2(x, y);
  q.sum_q = sum_p - mu * sum_t;
  q.sum_q2 = sum_p2 - 2.0 * mu * sum_tp + mu * mu * sum_t2;
  return q;
}

double BucketCosts::Intra(int64_t l, int64_t r) const {
  RANGESYN_DCHECK(l >= 1 && l <= r && r <= n());
  const double m = static_cast<double>(r - l + 1);
  const double mu = Mu(l, r);
  // With Q[t] = P[t] - mu*t, every intra range error is Q[b] - Q[a-1], so
  // summing over pairs x < y in [l-1, r] (m+1 points):
  //   Intra = (m+1) * sum Q^2 - (sum Q)^2.
  const WindowQ q = QMoments(l - 1, r, mu);
  const double intra = (m + 1.0) * q.sum_q2 - q.sum_q * q.sum_q;
  return intra < 0.0 ? 0.0 : intra;  // clamp tiny negative fp noise
}

double BucketCosts::Sap0Cost(int64_t l, int64_t r) const {
  RANGESYN_DCHECK(l >= 1 && l <= r && r <= n());
  const double m = static_cast<double>(r - l + 1);
  const double pr = static_cast<double>(stats_.P(r));
  const double pl1 = static_cast<double>(stats_.P(l - 1));

  // Suffix sums y_a = s[a,r] = P[r] - P[t], t = a-1 in [l-1, r-1].
  const double sum_suf = m * pr - stats_.SumP(l - 1, r - 1);
  const double sum_suf2 = m * pr * pr -
                          2.0 * pr * stats_.SumP(l - 1, r - 1) +
                          stats_.SumP2(l - 1, r - 1);
  const double ss_suffix =
      std::fmax(0.0, sum_suf2 - sum_suf * sum_suf / m);

  // Prefix sums y_b = s[l,b] = P[b] - P[l-1], b in [l, r].
  const double sum_pre = stats_.SumP(l, r) - m * pl1;
  const double sum_pre2 = stats_.SumP2(l, r) -
                          2.0 * pl1 * stats_.SumP(l, r) + m * pl1 * pl1;
  const double ss_prefix =
      std::fmax(0.0, sum_pre2 - sum_pre * sum_pre / m);

  return Intra(l, r) + static_cast<double>(n() - r) * ss_suffix +
         static_cast<double>(l - 1) * ss_prefix;
}

double BucketCosts::Sap1Cost(int64_t l, int64_t r) const {
  RANGESYN_DCHECK(l >= 1 && l <= r && r <= n());
  const double m = static_cast<double>(r - l + 1);
  const double pr = static_cast<double>(stats_.P(r));
  const double pl1 = static_cast<double>(stats_.P(l - 1));
  // Piece lengths x take the values 1..m for both regressions.
  const double sum_x = m * (m + 1.0) / 2.0;
  const double sxx = m * (m * m - 1.0) / 12.0;

  // Suffix regression: y = s[a,r], x = r-a+1; t = a-1 in [l-1, r-1].
  double ssr_suffix = 0.0;
  {
    const double sum_y = m * pr - stats_.SumP(l - 1, r - 1);
    const double sum_y2 = m * pr * pr -
                          2.0 * pr * stats_.SumP(l - 1, r - 1) +
                          stats_.SumP2(l - 1, r - 1);
    const double syy = std::fmax(0.0, sum_y2 - sum_y * sum_y / m);
    const double sum_xy = pr * sum_x -
                          static_cast<double>(r) * stats_.SumP(l - 1, r - 1) +
                          stats_.SumTP(l - 1, r - 1);
    const double sxy = sum_xy - sum_x * sum_y / m;
    ssr_suffix = (sxx > 0.0) ? std::fmax(0.0, syy - sxy * sxy / sxx) : 0.0;
  }

  // Prefix regression: y = s[l,b], x = b-l+1; b in [l, r].
  double ssr_prefix = 0.0;
  {
    const double sum_y = stats_.SumP(l, r) - m * pl1;
    const double sum_y2 = stats_.SumP2(l, r) -
                          2.0 * pl1 * stats_.SumP(l, r) + m * pl1 * pl1;
    const double syy = std::fmax(0.0, sum_y2 - sum_y * sum_y / m);
    const double sum_xy =
        (stats_.SumTP(l, r) - static_cast<double>(l - 1) * stats_.SumP(l, r)) -
        pl1 * sum_x;
    const double sxy = sum_xy - sum_x * sum_y / m;
    ssr_prefix = (sxx > 0.0) ? std::fmax(0.0, syy - sxy * sxy / sxx) : 0.0;
  }

  return Intra(l, r) + static_cast<double>(n() - r) * ssr_suffix +
         static_cast<double>(l - 1) * ssr_prefix;
}

double BucketCosts::Sap2Cost(int64_t l, int64_t r) const {
  RANGESYN_DCHECK(l >= 1 && l <= r && r <= n());
  const double m = static_cast<double>(r - l + 1);
  const double pr = static_cast<double>(stats_.P(r));
  const double pl1 = static_cast<double>(stats_.P(l - 1));
  const double sx = PrefixStats::SumT(1, r - l + 1);
  const double sx2 = PrefixStats::SumT2(1, r - l + 1);
  const double sx3 = PrefixStats::SumT3(1, r - l + 1);
  const double sx4 = PrefixStats::SumT4(1, r - l + 1);

  double ssr_suffix = 0.0;
  {
    const double sum_p = stats_.SumP(l - 1, r - 1);
    const double sum_tp = stats_.SumTP(l - 1, r - 1);
    const double sum_t2p = stats_.SumT2P(l - 1, r - 1);
    const double sy = m * pr - sum_p;
    const double sy2 =
        m * pr * pr - 2.0 * pr * sum_p + stats_.SumP2(l - 1, r - 1);
    const double sxy = pr * sx - static_cast<double>(r) * sum_p + sum_tp;
    const double sx2y =
        pr * sx2 - (static_cast<double>(r) * static_cast<double>(r) * sum_p -
                    2.0 * static_cast<double>(r) * sum_tp + sum_t2p);
    ssr_suffix =
        FitQuadraticFromMoments(m, sx, sx2, sx3, sx4, sy, sxy, sx2y, sy2)
            .ssr;
  }
  double ssr_prefix = 0.0;
  {
    const double sum_p = stats_.SumP(l, r);
    const double sum_tp = stats_.SumTP(l, r);
    const double sum_t2p = stats_.SumT2P(l, r);
    const double lm1 = static_cast<double>(l - 1);
    const double sy = sum_p - m * pl1;
    const double sy2 =
        stats_.SumP2(l, r) - 2.0 * pl1 * sum_p + m * pl1 * pl1;
    const double sxy = (sum_tp - lm1 * sum_p) - pl1 * sx;
    const double sx2y =
        (sum_t2p - 2.0 * lm1 * sum_tp + lm1 * lm1 * sum_p) - pl1 * sx2;
    ssr_prefix =
        FitQuadraticFromMoments(m, sx, sx2, sx3, sx4, sy, sxy, sx2y, sy2)
            .ssr;
  }
  return Intra(l, r) + static_cast<double>(n() - r) * ssr_suffix +
         static_cast<double>(l - 1) * ssr_prefix;
}

double BucketCosts::SumU(int64_t l, int64_t r) const {
  // u'_a = s[a,r] - (r-a+1)*mu = Q[r] - Q[a-1]; t = a-1 in [l-1, r-1].
  const double m = static_cast<double>(r - l + 1);
  const double mu = Mu(l, r);
  const double qr = static_cast<double>(stats_.P(r)) -
                    mu * static_cast<double>(r);
  const WindowQ q = QMoments(l - 1, r - 1, mu);
  return m * qr - q.sum_q;
}

double BucketCosts::SumU2(int64_t l, int64_t r) const {
  const double m = static_cast<double>(r - l + 1);
  const double mu = Mu(l, r);
  const double qr = static_cast<double>(stats_.P(r)) -
                    mu * static_cast<double>(r);
  const WindowQ q = QMoments(l - 1, r - 1, mu);
  return std::fmax(0.0, m * qr * qr - 2.0 * qr * q.sum_q + q.sum_q2);
}

double BucketCosts::SumV(int64_t l, int64_t r) const {
  // v'_b = s[l,b] - (b-l+1)*mu = Q[b] - Q[l-1]; b in [l, r].
  const double m = static_cast<double>(r - l + 1);
  const double mu = Mu(l, r);
  const double ql1 = static_cast<double>(stats_.P(l - 1)) -
                     mu * static_cast<double>(l - 1);
  const WindowQ q = QMoments(l, r, mu);
  return q.sum_q - m * ql1;
}

double BucketCosts::SumV2(int64_t l, int64_t r) const {
  const double m = static_cast<double>(r - l + 1);
  const double mu = Mu(l, r);
  const double ql1 = static_cast<double>(stats_.P(l - 1)) -
                     mu * static_cast<double>(l - 1);
  const WindowQ q = QMoments(l, r, mu);
  return std::fmax(0.0, q.sum_q2 - 2.0 * ql1 * q.sum_q + m * ql1 * ql1);
}

double BucketCosts::A0Cost(int64_t l, int64_t r) const {
  RANGESYN_DCHECK(l >= 1 && l <= r && r <= n());
  return Intra(l, r) + static_cast<double>(n() - r) * SumU2(l, r) +
         static_cast<double>(l - 1) * SumV2(l, r);
}

// ------------------------------------------------------- WeightedPointCosts

WeightedPointCosts::WeightedPointCosts(const std::vector<int64_t>& data,
                                       const std::vector<double>& weights)
    : n_(static_cast<int64_t>(data.size())) {
  RANGESYN_CHECK_EQ(data.size(), weights.size());
  RANGESYN_CHECK_GE(n_, 1);
  cum_w_.assign(static_cast<size_t>(n_) + 1, 0.0);
  cum_wa_.assign(static_cast<size_t>(n_) + 1, 0.0);
  cum_wa2_.assign(static_cast<size_t>(n_) + 1, 0.0);
  for (int64_t i = 1; i <= n_; ++i) {
    const double w = weights[static_cast<size_t>(i - 1)];
    RANGESYN_CHECK_GT(w, 0.0) << "weights must be positive";
    const double a = static_cast<double>(data[static_cast<size_t>(i - 1)]);
    const size_t k = static_cast<size_t>(i);
    cum_w_[k] = cum_w_[k - 1] + w;
    cum_wa_[k] = cum_wa_[k - 1] + w * a;
    cum_wa2_[k] = cum_wa2_[k - 1] + w * a * a;
  }
}

std::vector<double> WeightedPointCosts::RangeCoverageWeights(int64_t n) {
  std::vector<double> w(static_cast<size_t>(n));
  for (int64_t i = 1; i <= n; ++i) {
    w[static_cast<size_t>(i - 1)] =
        static_cast<double>(i) * static_cast<double>(n - i + 1);
  }
  return w;
}

std::vector<double> WeightedPointCosts::UniformWeights(int64_t n) {
  return std::vector<double>(static_cast<size_t>(n), 1.0);
}

double WeightedPointCosts::Cost(int64_t l, int64_t r) const {
  RANGESYN_DCHECK(l >= 1 && l <= r && r <= n_);
  const double w = cum_w_[static_cast<size_t>(r)] -
                   cum_w_[static_cast<size_t>(l - 1)];
  const double wa = cum_wa_[static_cast<size_t>(r)] -
                    cum_wa_[static_cast<size_t>(l - 1)];
  const double wa2 = cum_wa2_[static_cast<size_t>(r)] -
                     cum_wa2_[static_cast<size_t>(l - 1)];
  // sum w_i (A_i - mu_w)^2 = sum w A^2 - (sum w A)^2 / sum w.
  return std::fmax(0.0, wa2 - wa * wa / w);
}

double WeightedPointCosts::WeightedMean(int64_t l, int64_t r) const {
  RANGESYN_DCHECK(l >= 1 && l <= r && r <= n_);
  const double w = cum_w_[static_cast<size_t>(r)] -
                   cum_w_[static_cast<size_t>(l - 1)];
  const double wa = cum_wa_[static_cast<size_t>(r)] -
                    cum_wa_[static_cast<size_t>(l - 1)];
  return wa / w;
}

}  // namespace rangesyn
