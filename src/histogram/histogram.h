#ifndef RANGESYN_HISTOGRAM_HISTOGRAM_H_
#define RANGESYN_HISTOGRAM_HISTOGRAM_H_

#include <string>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/estimator.h"
#include "core/result.h"
#include "histogram/partition.h"

namespace rangesyn {

/// How the classical (average-per-bucket) histogram rounds its answers.
/// The paper's eq. (1) rounds "to a nearby integer in an arbitrary way";
/// the OPT-A dynamic program in this library instantiates that freedom by
/// rounding each partial end piece separately (kPerPiece), which keeps the
/// per-piece errors integral (DESIGN.md §3.1).
enum class PieceRounding {
  kNone,      // return the exact real-valued formula
  kPerPiece,  // round each partial end piece to nearest (ties to even)
  kWhole,     // round the final sum once
};

/// Classical histogram: bucket boundaries plus one stored value per bucket,
/// answering with the paper's eq. (1): partial left piece + exact middle +
/// partial right piece, each piece (piece length) x (stored value).
///
/// This single representation backs OPT-A, A0, POINT-OPT, EQUI-WIDTH,
/// EQUI-DEPTH, MAXDIFF and the re-optimized variants — they differ only in
/// how boundaries/values are chosen. Storage: 2 words per bucket.
class AvgHistogram : public RangeEstimator {
 public:
  /// `values[k]` is the stored value of bucket k. Sizes must match.
  static Result<AvgHistogram> Create(Partition partition,
                                     std::vector<double> values,
                                     std::string name,
                                     PieceRounding rounding);

  /// Builds boundaries' true bucket averages from `data` (A[i] = data[i-1]).
  static Result<AvgHistogram> WithTrueAverages(
      const std::vector<int64_t>& data, Partition partition,
      std::string name, PieceRounding rounding);

  RANGESYN_HOT_PATH double EstimateRange(int64_t a, int64_t b)
      const override;
  int64_t StorageWords() const override {
    return 2 * partition_.num_buckets();
  }
  int64_t domain_size() const override { return partition_.n(); }
  std::string Name() const override { return name_; }

  const Partition& partition() const { return partition_; }
  const std::vector<double>& values() const { return values_; }
  PieceRounding rounding() const { return rounding_; }

  /// Returns a copy with different stored values (used by the
  /// re-optimization post-pass).
  AvgHistogram WithValues(std::vector<double> values,
                          std::string name) const;

 private:
  AvgHistogram(Partition partition, std::vector<double> values,
               std::string name, PieceRounding rounding);

  /// Sum of width_j * value_j over full buckets j in [ka+1, kb-1].
  RANGESYN_HOT_PATH double MiddleMass(int64_t ka, int64_t kb) const {
    return cum_mass_[static_cast<size_t>(kb)] -
           cum_mass_[static_cast<size_t>(ka + 1)];
  }

  Partition partition_;
  std::vector<double> values_;
  std::vector<double> cum_mass_;  // cum_mass_[k] = sum_{j<k} width_j*value_j
  std::string name_;
  PieceRounding rounding_;
};

/// SAP0 histogram (paper §2.2.1): per bucket, a suffix value, a prefix
/// value, and the bucket average (recoverable from the other two, so the
/// representation costs 3 words per bucket — Theorem 7).
///
/// Inter-bucket query (a,b): suff(buck(a)) + exact middle + pref(buck(b));
/// the answer depends only on the buckets of a and b, not on a and b
/// themselves. Intra-bucket query: (b-a+1) * avg.
class Sap0Histogram : public RangeEstimator {
 public:
  /// Builds the representation-optimal summary values for the given
  /// boundaries: suffix/prefix values are the averages of the bucket suffix
  /// sums and bucket prefix sums (Lemma 5 part 2).
  static Result<Sap0Histogram> Build(const std::vector<int64_t>& data,
                                     Partition partition);

  /// Reconstructs a SAP0 histogram from its 3B stored words (boundaries,
  /// suffix values, prefix values); the bucket averages are recovered as
  /// (pref + suff) / (width + 1), which is exact when the summaries are
  /// the Lemma-5 optimal values. Used by the serializer.
  static Result<Sap0Histogram> FromSummaries(Partition partition,
                                             std::vector<double> suffixes,
                                             std::vector<double> prefixes);

  RANGESYN_HOT_PATH double EstimateRange(int64_t a, int64_t b)
      const override;
  int64_t StorageWords() const override {
    return 3 * partition_.num_buckets();
  }
  int64_t domain_size() const override { return partition_.n(); }
  std::string Name() const override { return "SAP0"; }

  const Partition& partition() const { return partition_; }
  const std::vector<double>& suffix_values() const { return suff_; }
  const std::vector<double>& prefix_values() const { return pref_; }
  const std::vector<double>& averages() const { return avg_; }

 private:
  Sap0Histogram(Partition partition, std::vector<double> suff,
                std::vector<double> pref, std::vector<double> avg);

  RANGESYN_HOT_PATH double MiddleMass(int64_t ka, int64_t kb) const {
    return cum_mass_[static_cast<size_t>(kb)] -
           cum_mass_[static_cast<size_t>(ka + 1)];
  }

  Partition partition_;
  std::vector<double> cum_mass_;
  std::vector<double> suff_;  // avg of bucket suffix sums s[a, end]
  std::vector<double> pref_;  // avg of bucket prefix sums s[start, b]
  std::vector<double> avg_;   // bucket average (derived, not counted)
};

/// SAP1 histogram (paper §2.2.2): per bucket, linear models for the suffix
/// and prefix sums. s[a, end] is approximated by
/// (end - a + 1) * suff_slope + suff_icept, and symmetrically for prefixes.
/// Optimal summary values are the least-squares fits; 5 words per bucket
/// (Theorem 8). Intra-bucket queries use the bucket average.
class Sap1Histogram : public RangeEstimator {
 public:
  /// Builds representation-optimal regression summaries for the given
  /// boundaries.
  static Result<Sap1Histogram> Build(const std::vector<int64_t>& data,
                                     Partition partition);

  /// Reconstructs a SAP1 histogram from its 5B stored words. The bucket
  /// averages are recovered through the regression means: the fitted line
  /// passes through (x̄, ȳ) with x̄ = (width+1)/2, giving the SAP0
  /// suffix/prefix averages, whence avg = (pref̄ + suff̄) / (width + 1).
  static Result<Sap1Histogram> FromSummaries(
      Partition partition, std::vector<double> suffix_slopes,
      std::vector<double> suffix_intercepts,
      std::vector<double> prefix_slopes,
      std::vector<double> prefix_intercepts);

  RANGESYN_HOT_PATH double EstimateRange(int64_t a, int64_t b)
      const override;
  int64_t StorageWords() const override {
    return 5 * partition_.num_buckets();
  }
  int64_t domain_size() const override { return partition_.n(); }
  std::string Name() const override { return "SAP1"; }

  const Partition& partition() const { return partition_; }
  const std::vector<double>& suffix_slopes() const { return suff_slope_; }
  const std::vector<double>& suffix_intercepts() const { return suff_icept_; }
  const std::vector<double>& prefix_slopes() const { return pref_slope_; }
  const std::vector<double>& prefix_intercepts() const { return pref_icept_; }
  const std::vector<double>& averages() const { return avg_; }

 private:
  Sap1Histogram(Partition partition, std::vector<double> ss,
                std::vector<double> si, std::vector<double> ps,
                std::vector<double> pi, std::vector<double> avg);

  RANGESYN_HOT_PATH double MiddleMass(int64_t ka, int64_t kb) const {
    return cum_mass_[static_cast<size_t>(kb)] -
           cum_mass_[static_cast<size_t>(ka + 1)];
  }

  Partition partition_;
  std::vector<double> cum_mass_;
  std::vector<double> suff_slope_;
  std::vector<double> suff_icept_;
  std::vector<double> pref_slope_;
  std::vector<double> pref_icept_;
  std::vector<double> avg_;  // derived, not counted in storage
};

/// SAP2 histogram — this library's extension one rung above SAP1 (the
/// paper's §2.2.2 notes the generalization): per bucket, degree-2
/// polynomial models of the suffix and prefix sums in the piece length.
/// Least-squares residuals with an intercept sum to zero, so the
/// Decomposition Lemma still applies and the O(n²B) DP construction is
/// exactly range-optimal for this representation. 7 words per bucket.
class Sap2Histogram : public RangeEstimator {
 public:
  /// Per-bucket quadratic model c0 + c1*x + c2*x² in the piece length x.
  struct Model {
    double c0 = 0.0;
    double c1 = 0.0;
    double c2 = 0.0;
    double At(double x) const { return c0 + c1 * x + c2 * x * x; }
  };

  /// Builds representation-optimal quadratic summaries for the given
  /// boundaries.
  static Result<Sap2Histogram> Build(const std::vector<int64_t>& data,
                                     Partition partition);

  /// Reconstructs from the 7B stored words; averages recovered from the
  /// fits at the moment points (the fitted surface passes through the
  /// sample mean).
  static Result<Sap2Histogram> FromSummaries(Partition partition,
                                             std::vector<Model> suffix_models,
                                             std::vector<Model> prefix_models);

  RANGESYN_HOT_PATH double EstimateRange(int64_t a, int64_t b)
      const override;
  int64_t StorageWords() const override {
    return 7 * partition_.num_buckets();
  }
  int64_t domain_size() const override { return partition_.n(); }
  std::string Name() const override { return "SAP2"; }

  const Partition& partition() const { return partition_; }
  const std::vector<Model>& suffix_models() const { return suff_; }
  const std::vector<Model>& prefix_models() const { return pref_; }
  const std::vector<double>& averages() const { return avg_; }

 private:
  Sap2Histogram(Partition partition, std::vector<Model> suff,
                std::vector<Model> pref, std::vector<double> avg);

  RANGESYN_HOT_PATH double MiddleMass(int64_t ka, int64_t kb) const {
    return cum_mass_[static_cast<size_t>(kb)] -
           cum_mass_[static_cast<size_t>(ka + 1)];
  }

  Partition partition_;
  std::vector<double> cum_mass_;
  std::vector<Model> suff_;
  std::vector<Model> pref_;
  std::vector<double> avg_;  // derived, not counted in storage
};

/// The trivial one-value synopsis: the global average answers every query
/// as (b-a+1) * avg. Storage: 1 word. The paper's NAIVE upper bound.
class NaiveEstimator : public RangeEstimator {
 public:
  static Result<NaiveEstimator> Build(const std::vector<int64_t>& data);

  /// Reconstructs from the stored word (plus the domain size).
  static Result<NaiveEstimator> FromAverage(int64_t n, double average);

  RANGESYN_HOT_PATH double EstimateRange(int64_t a, int64_t b)
      const override;
  int64_t StorageWords() const override { return 1; }
  int64_t domain_size() const override { return n_; }
  std::string Name() const override { return "NAIVE"; }

  double average() const { return avg_; }

 private:
  NaiveEstimator(int64_t n, double avg) : n_(n), avg_(avg) {}
  int64_t n_;
  double avg_;
};

}  // namespace rangesyn

#endif  // RANGESYN_HISTOGRAM_HISTOGRAM_H_
