#include "histogram/reopt.h"

#include <cmath>

#include "core/logging.h"
#include "histogram/prefix_stats.h"
#include "linalg/solve.h"

namespace rangesyn {
namespace {

double SumSq(double m) { return m * (m + 1.0) * (2.0 * m + 1.0) / 6.0; }
double SumCu(double m) {
  const double t = m * (m + 1.0) / 2.0;
  return t * t;
}

Status ValidateReoptInput(const std::vector<int64_t>& data,
                          const Partition& partition) {
  if (static_cast<int64_t>(data.size()) != partition.n()) {
    return InvalidArgumentError("reopt: data size != partition n");
  }
  return OkStatus();
}

}  // namespace

double NormalEquations::SseAt(const std::vector<double>& x) const {
  RANGESYN_CHECK_EQ(static_cast<int64_t>(x.size()), q.rows());
  const std::vector<double> qx = q.Multiply(x);
  return c0 - 2.0 * Dot(rhs, x) + Dot(x, qx);
}

Result<NormalEquations> AssembleNormalEquations(
    const std::vector<int64_t>& data, const Partition& partition) {
  RANGESYN_RETURN_IF_ERROR(ValidateReoptInput(data, partition));
  const int64_t n = partition.n();
  const int64_t num_b = partition.num_buckets();
  NormalEquations out{Matrix(num_b, num_b),
                      std::vector<double>(static_cast<size_t>(num_b), 0.0),
                      0.0};

  // Per-bucket range-overlap mass seen from the left (L) and right (R):
  //   L_k = Σ_{a <= e_k} |[a, ·] ∩ bucket_k|  (right endpoint beyond e_k)
  //   R_k = Σ_{b >= p_k} |[·, b] ∩ bucket_k|  (left endpoint before p_k)
  std::vector<double> lmass(static_cast<size_t>(num_b));
  std::vector<double> rmass(static_cast<size_t>(num_b));
  for (int64_t k = 0; k < num_b; ++k) {
    const double p = static_cast<double>(partition.bucket_start(k));
    const double e = static_cast<double>(partition.bucket_end(k));
    const double w = e - p + 1.0;
    lmass[static_cast<size_t>(k)] = (p - 1.0) * w + w * (w + 1.0) / 2.0;
    rmass[static_cast<size_t>(k)] =
        (static_cast<double>(n) - e) * w + w * (w + 1.0) / 2.0;
  }
  // Off-diagonal entries factorize because with k < j every range that
  // touches both buckets has a <= e_k < p_j <= b, so the overlaps with the
  // two buckets depend on a and b independently.
  for (int64_t k = 0; k < num_b; ++k) {
    for (int64_t j = k + 1; j < num_b; ++j) {
      const double v = lmass[static_cast<size_t>(k)] *
                       rmass[static_cast<size_t>(j)];
      out.q(k, j) = v;
      out.q(j, k) = v;
    }
  }
  // Diagonal: split ranges by which side of the bucket each endpoint is on.
  for (int64_t k = 0; k < num_b; ++k) {
    const double p = static_cast<double>(partition.bucket_start(k));
    const double e = static_cast<double>(partition.bucket_end(k));
    const double w = e - p + 1.0;
    const double left = p - 1.0;
    const double right = static_cast<double>(n) - e;
    double v = left * right * w * w;           // range covers the bucket
    v += left * SumSq(w);                      // b inside, a left of bucket
    v += right * SumSq(w);                     // a inside, b right of bucket
    v += (w + 1.0) * SumSq(w) - SumCu(w);      // both endpoints inside
    out.q(k, k) = v;
  }

  // rhs_k = Σ_{i in bucket_k} D(i) with
  //   D(i) = Σ_t A[t] * min(t,i) * (n+1-max(t,i))
  //        = (n+1-i) * Σ_{t<=i} t*A[t] + i * Σ_{t>i} (n+1-t)*A[t].
  std::vector<double> cum_ta(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> cum_na(static_cast<size_t>(n) + 1, 0.0);
  for (int64_t t = 1; t <= n; ++t) {
    const double a = static_cast<double>(data[static_cast<size_t>(t - 1)]);
    cum_ta[static_cast<size_t>(t)] =
        cum_ta[static_cast<size_t>(t - 1)] + static_cast<double>(t) * a;
    cum_na[static_cast<size_t>(t)] =
        cum_na[static_cast<size_t>(t - 1)] +
        static_cast<double>(n + 1 - t) * a;
  }
  for (int64_t k = 0; k < num_b; ++k) {
    double acc = 0.0;
    for (int64_t i = partition.bucket_start(k); i <= partition.bucket_end(k);
         ++i) {
      const double d =
          static_cast<double>(n + 1 - i) * cum_ta[static_cast<size_t>(i)] +
          static_cast<double>(i) *
              (cum_na[static_cast<size_t>(n)] -
               cum_na[static_cast<size_t>(i)]);
      acc += d;
    }
    out.rhs[static_cast<size_t>(k)] = acc;
  }

  // c0 = Σ_{a<=b} s[a,b]^2 = Σ pairs (x<y) (P[y]-P[x])^2 over P[0..n]
  //    = (n+1) Σ P² - (Σ P)².
  PrefixStats stats(data);
  const double sum_p = stats.SumP(0, n);
  const double sum_p2 = stats.SumP2(0, n);
  out.c0 = static_cast<double>(n + 1) * sum_p2 - sum_p * sum_p;

  return out;
}

Result<NormalEquations> AssembleNormalEquationsBrute(
    const std::vector<int64_t>& data, const Partition& partition) {
  RANGESYN_RETURN_IF_ERROR(ValidateReoptInput(data, partition));
  const int64_t n = partition.n();
  const int64_t num_b = partition.num_buckets();
  PrefixStats stats(data);
  NormalEquations out{Matrix(num_b, num_b),
                      std::vector<double>(static_cast<size_t>(num_b), 0.0),
                      0.0};
  std::vector<double> c(static_cast<size_t>(num_b));
  for (int64_t a = 1; a <= n; ++a) {
    std::fill(c.begin(), c.end(), 0.0);
    for (int64_t b = a; b <= n; ++b) {
      c[static_cast<size_t>(partition.BucketOf(b))] += 1.0;
      const double s = static_cast<double>(stats.Sum(a, b));
      out.c0 += s * s;
      for (int64_t k = 0; k < num_b; ++k) {
        const double ck = c[static_cast<size_t>(k)];
        // Counts built by += 1.0 are exact; zero means "bucket not hit".
        if (ck == 0.0) continue;  // lint: float-eq-ok
        out.rhs[static_cast<size_t>(k)] += s * ck;
        for (int64_t j = k; j < num_b; ++j) {
          const double cj = c[static_cast<size_t>(j)];
          if (cj == 0.0) continue;  // lint: float-eq-ok (exact count)
          out.q(k, j) += ck * cj;
        }
      }
    }
  }
  // Mirror the upper triangle.
  for (int64_t k = 0; k < num_b; ++k) {
    for (int64_t j = k + 1; j < num_b; ++j) out.q(j, k) = out.q(k, j);
  }
  return out;
}

Result<std::vector<double>> OptimalBucketValues(
    const std::vector<int64_t>& data, const Partition& partition) {
  RANGESYN_ASSIGN_OR_RETURN(NormalEquations eq,
                            AssembleNormalEquations(data, partition));
  return SolveSymmetricRobust(eq.q, eq.rhs);
}

Result<AvgHistogram> Reoptimize(const std::vector<int64_t>& data,
                                const AvgHistogram& base) {
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> values,
                            OptimalBucketValues(data, base.partition()));
  RANGESYN_ASSIGN_OR_RETURN(
      AvgHistogram hist,
      AvgHistogram::Create(base.partition(), std::move(values),
                           base.Name() + "-reopt", PieceRounding::kNone));
  return hist;
}

}  // namespace rangesyn
