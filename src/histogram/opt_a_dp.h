#ifndef RANGESYN_HISTOGRAM_OPT_A_DP_H_
#define RANGESYN_HISTOGRAM_OPT_A_DP_H_

#include <cstdint>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/deadline.h"
#include "core/result.h"
#include "histogram/histogram.h"

namespace rangesyn {

/// Options for the pseudo-polynomial range-optimal histogram construction
/// (paper §2.1, Theorems 1 and 2).
struct OptAOptions {
  /// Maximum number of buckets B.
  int64_t max_buckets = 8;

  /// Require exactly max_buckets buckets instead of the best k <= B.
  bool exact_buckets = false;

  /// Safety valve: abort with ResourceExhausted when the total number of
  /// live DP states (i, k, Λ) exceeds this bound. The paper bounds the
  /// state count by O(n * B * Λ*) with Λ* <= min(OPT, n*s[1,n]); in
  /// practice reachable states are far fewer, but heavy-volume inputs can
  /// explode — callers should fall back to OPT-A-ROUNDED then.
  uint64_t max_states = 50'000'000;

  /// Ablation switches (both prunes are admissible — disabling them never
  /// changes the optimum, only the state count; see bench/tbl_ablation).
  /// Dominance prune: keep only the lower envelope of cost + 2ΛV lines
  /// over the achievable future cross-sum interval.
  bool enable_dominance_prune = true;
  /// Λ-cap prune: discard |Λ| > sqrt(n * UB) with UB a cheap feasible
  /// upper bound on OPT.
  bool enable_lambda_cap = true;

  /// Cooperative deadline, observed in the O(n^3) table precomputation and
  /// at every DP layer chunk. Expiry aborts with DeadlineExceeded; like the
  /// max_states valve, callers should fall back to a cheaper construction
  /// (the engine factory's ladder does; DESIGN.md §9). The default never
  /// expires and adds no clock reads.
  Deadline deadline;
};

/// Result of the OPT-A construction.
struct OptAResult {
  /// The range-optimal classical histogram (true bucket averages,
  /// per-piece rounding — the answering rule the DP optimizes exactly).
  AvgHistogram histogram;

  /// The optimal all-ranges SSE as computed by the DP. Matches a
  /// brute-force SSE evaluation of `histogram` up to floating-point noise.
  double optimal_sse = 0.0;

  int64_t buckets_used = 0;

  /// Total DP states materialized (for reporting / tuning).
  uint64_t states_explored = 0;
};

/// Builds the provably range-optimal OPT-A histogram via the improved
/// Λ-state dynamic program (paper Theorem 2; DESIGN.md §3.1). Runtime is
/// pseudo-polynomial: O(n^2 * B * |reachable Λ|) after an O(n^3)
/// bucket-statistics precomputation. Requires non-negative integer counts.
RANGESYN_CANCELLABLE RANGESYN_DETERMINISTIC Result<OptAResult> BuildOptA(
    const std::vector<int64_t>& data, const OptAOptions& options);

/// The paper's warm-up formulation (§2.1.1, Theorem 1) tracking the pair
/// (Λ, Λ2) = (sum of piece errors, sum of squared piece errors). Strictly
/// slower than BuildOptA and exposed for cross-validation on small inputs.
RANGESYN_CANCELLABLE RANGESYN_DETERMINISTIC Result<OptAResult>
BuildOptAWarmup(const std::vector<int64_t>& data,
                const OptAOptions& options);

/// Options for the rounding approximation (paper §2.1.3, Theorem 4).
struct OptARoundedOptions {
  int64_t max_buckets = 8;
  bool exact_buckets = false;
  uint64_t max_states = 50'000'000;

  /// Cooperative deadline, forwarded to the inner exact DP.
  Deadline deadline;

  /// Rounding granularity x >= 1: data is rounded to multiples of x and
  /// divided by x before the exact DP runs, shrinking the Λ state space by
  /// a factor of about x at a bounded loss in histogram quality.
  int64_t granularity = 2;

  /// When true (default), the final histogram stores the true bucket
  /// averages of the *original* data over the boundaries found on the
  /// rounded data — never worse than the paper's literal "multiply through
  /// by x" (set false for the literal Definition 3 behavior).
  bool refit_values = true;
};

/// Builds the OPT-A-ROUNDED histogram. The returned optimal_sse field is
/// the DP objective on the rounded data scaled back by granularity^2 — an
/// estimate, not the exact SSE of the returned histogram.
RANGESYN_CANCELLABLE RANGESYN_DETERMINISTIC Result<OptAResult>
BuildOptARounded(const std::vector<int64_t>& data,
                 const OptARoundedOptions& options);

/// Picks a granularity aiming for a (1+epsilon)-style quality target using
/// the paper's analysis: x proportional to epsilon * sqrt(OPT / (n^3)),
/// estimated with a cheap SAP1 upper bound on OPT. Returns at least 1.
int64_t SuggestGranularity(const std::vector<int64_t>& data,
                           int64_t max_buckets, double epsilon);

}  // namespace rangesyn

#endif  // RANGESYN_HISTOGRAM_OPT_A_DP_H_
