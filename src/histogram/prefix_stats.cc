#include "histogram/prefix_stats.h"

namespace rangesyn {

PrefixStats::PrefixStats(const std::vector<int64_t>& data)
    : n_(static_cast<int64_t>(data.size())) {
  RANGESYN_CHECK_GE(n_, 1);
  p_.resize(static_cast<size_t>(n_) + 1);
  p_[0] = 0;
  for (int64_t i = 1; i <= n_; ++i) {
    const int64_t a = data[static_cast<size_t>(i - 1)];
    RANGESYN_CHECK_GE(a, 0) << "attribute-value counts must be non-negative";
    p_[static_cast<size_t>(i)] = p_[static_cast<size_t>(i - 1)] + a;
  }
  cum_p_.assign(static_cast<size_t>(n_) + 2, 0.0);
  cum_p2_.assign(static_cast<size_t>(n_) + 2, 0.0);
  cum_tp_.assign(static_cast<size_t>(n_) + 2, 0.0);
  cum_t2p_.assign(static_cast<size_t>(n_) + 2, 0.0);
  for (int64_t t = 0; t <= n_; ++t) {
    const double pt = static_cast<double>(p_[static_cast<size_t>(t)]);
    const double td = static_cast<double>(t);
    const size_t k = static_cast<size_t>(t);
    cum_p_[k + 1] = cum_p_[k] + pt;
    cum_p2_[k + 1] = cum_p2_[k] + pt * pt;
    cum_tp_[k + 1] = cum_tp_[k] + td * pt;
    cum_t2p_[k + 1] = cum_t2p_[k] + td * td * pt;
  }
}

}  // namespace rangesyn
