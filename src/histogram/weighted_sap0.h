#ifndef RANGESYN_HISTOGRAM_WEIGHTED_SAP0_H_
#define RANGESYN_HISTOGRAM_WEIGHTED_SAP0_H_

#include <cstdint>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/estimator.h"
#include "core/result.h"
#include "data/workload.h"
#include "histogram/partition.h"

namespace rangesyn {

/// Product-form range-query workload weights: query (a, b) has weight
/// alpha[a-1] * beta[b-1]. The paper's SSE objective is the uniform case
/// (alpha = beta = 1); this extension generalizes the SAP0 optimality to
/// any product-form workload — the Decomposition Lemma survives because
/// per-bucket *weighted* averages make the weighted residuals sum to zero.
struct RangeWorkloadWeights {
  std::vector<double> alpha;  // left-endpoint weights, all > 0
  std::vector<double> beta;   // right-endpoint weights, all > 0

  static RangeWorkloadWeights Uniform(int64_t n);

  /// Fits product-form weights to an observed query log by its endpoint
  /// marginals (exact when the log is product-form; the natural
  /// approximation otherwise). `smoothing` is added to every endpoint
  /// count so unseen endpoints keep positive weight.
  static Result<RangeWorkloadWeights> FromQueries(
      int64_t n, const std::vector<RangeQuery>& queries,
      double smoothing = 1.0);

  int64_t n() const { return static_cast<int64_t>(alpha.size()); }
  double WeightOf(int64_t a, int64_t b) const {
    return alpha[static_cast<size_t>(a - 1)] *
           beta[static_cast<size_t>(b - 1)];
  }
};

/// SAP0 histogram whose suffix/prefix summary values are the
/// workload-weighted averages — optimal summary values for the weighted
/// SSE on its boundaries. Storage 4 words per bucket: unlike uniform
/// SAP0, the bucket average is not recoverable from the weighted
/// summaries, so it is stored explicitly.
class WeightedSap0Histogram : public RangeEstimator {
 public:
  static Result<WeightedSap0Histogram> Build(
      const std::vector<int64_t>& data, Partition partition,
      const RangeWorkloadWeights& weights);

  /// Reconstructs from the 4B stored words (used by the serializer).
  static Result<WeightedSap0Histogram> FromSummaries(
      Partition partition, std::vector<double> suffixes,
      std::vector<double> prefixes, std::vector<double> averages);

  RANGESYN_HOT_PATH double EstimateRange(int64_t a, int64_t b)
      const override;
  int64_t StorageWords() const override {
    return 4 * partition_.num_buckets();
  }
  int64_t domain_size() const override { return partition_.n(); }
  std::string Name() const override { return "W-SAP0"; }

  const Partition& partition() const { return partition_; }
  const std::vector<double>& suffix_values() const { return suff_; }
  const std::vector<double>& prefix_values() const { return pref_; }
  const std::vector<double>& averages() const { return avg_; }

 private:
  WeightedSap0Histogram(Partition partition, std::vector<double> suff,
                        std::vector<double> pref, std::vector<double> avg);

  double MiddleMass(int64_t ka, int64_t kb) const {
    return cum_mass_[static_cast<size_t>(kb)] -
           cum_mass_[static_cast<size_t>(ka + 1)];
  }

  Partition partition_;
  std::vector<double> cum_mass_;
  std::vector<double> suff_;
  std::vector<double> pref_;
  std::vector<double> avg_;
};

/// O(1)-per-suffix/prefix, O(width)-per-intra weighted bucket cost oracle.
/// Summing Cost over the buckets of a partition equals the weighted
/// all-ranges SSE of the WeightedSap0Histogram on that partition.
class WeightedSap0Costs {
 public:
  /// `data` and `weights` sizes must match; weights must be positive.
  /// Construction is O(n); Cost(l, r) is O(r - l).
  static Result<WeightedSap0Costs> Create(
      const std::vector<int64_t>& data, RangeWorkloadWeights weights);

  int64_t n() const { return n_; }
  double Cost(int64_t l, int64_t r) const;

  /// The weighted-optimal summary values of bucket [l, r].
  double WeightedSuffixValue(int64_t l, int64_t r) const;
  double WeightedPrefixValue(int64_t l, int64_t r) const;

 private:
  WeightedSap0Costs() = default;

  int64_t n_ = 0;
  std::vector<int64_t> p_;          // exact prefix sums of the data
  RangeWorkloadWeights weights_;
  std::vector<double> cum_a_;       // prefix sums of alpha
  std::vector<double> cum_b_;       // prefix sums of beta
  std::vector<double> cum_ap_;      // alpha[a-1] * P[a-1]
  std::vector<double> cum_ap2_;     // alpha[a-1] * P[a-1]^2
  std::vector<double> cum_bp_;      // beta[b-1] * P[b]
  std::vector<double> cum_bp2_;     // beta[b-1] * P[b]^2
};

/// Optimal weighted-SAP0 construction: dynamic program over the weighted
/// bucket costs; O(n^3 + n^2 B) time due to the O(width) intra term.
Result<WeightedSap0Histogram> BuildWeightedSap0(
    const std::vector<int64_t>& data, int64_t buckets,
    const RangeWorkloadWeights& weights);

/// Weighted all-ranges SSE: sum over a <= b of
/// alpha(a) * beta(b) * (s[a,b] - estimate)². O(n²) evaluation.
Result<double> WeightedRangeSse(const std::vector<int64_t>& data,
                                const RangeEstimator& estimator,
                                const RangeWorkloadWeights& weights);

}  // namespace rangesyn

#endif  // RANGESYN_HISTOGRAM_WEIGHTED_SAP0_H_
