#include "histogram/dp.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include <atomic>

#include "core/failpoint.h"
#include "core/logging.h"
#include "core/mathutil.h"
#include "core/threadpool.h"
#include "obs/obs.h"

namespace rangesyn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

#ifdef RANGESYN_AUDIT
/// RANGESYN_AUDIT self-check, run on every DP solve in audit builds: the
/// reported cost must re-sum from the bucket-cost oracle over the chosen
/// partition, and for tiny domains no partition with the same budget may
/// beat it — exhaustive enumeration over all C(n-1, k-1) candidates.
/// Aborts on violation; see src/audit/ for the non-fatal verifier layer.
void AuditDpSolution(int64_t n, int64_t max_buckets,
                     const BucketCostFn& cost,
                     const IntervalDpResult& result, bool exact_buckets) {
  double resum = 0.0;
  for (int64_t k = 0; k < result.partition.num_buckets(); ++k) {
    resum += cost(result.partition.bucket_start(k),
                  result.partition.bucket_end(k));
  }
  RANGESYN_CHECK(AlmostEqual(resum, result.cost, 1e-9, 1e-6))
      << "DP audit: reported cost " << result.cost
      << " != re-summed bucket costs " << resum;
  constexpr int64_t kMaxExhaustiveN = 12;
  if (n > kMaxExhaustiveN) return;
  const double tol = 1e-9 * std::fabs(result.cost) + 1e-6;
  const auto check_no_better = [&](int64_t k) {
    ForEachPartition(n, k, [&](const Partition& p) {
      double c = 0.0;
      for (int64_t j = 0; j < p.num_buckets(); ++j) {
        c += cost(p.bucket_start(j), p.bucket_end(j));
      }
      RANGESYN_CHECK(result.cost <= c + tol)
          << "DP audit: a " << k << "-bucket partition costs " << c
          << ", beating the DP's " << result.cost << " (n=" << n << ")";
    });
  };
  if (exact_buckets) {
    check_no_better(result.buckets_used);
  } else {
    for (int64_t k = 1; k <= std::min(max_buckets, n); ++k) {
      check_no_better(k);
    }
  }
}
#endif  // RANGESYN_AUDIT

/// Shared DP core. Fills best[k][i] = optimal cost of partitioning [1, i]
/// into exactly k buckets, and parent[k][i] = the end of the (k-1)-th
/// bucket in an optimal solution.
struct DpTable {
  int64_t n;
  int64_t max_buckets;
  // Indexed [k][i] with k in 0..max_buckets, i in 0..n.
  std::vector<std::vector<double>> best;
  std::vector<std::vector<int64_t>> parent;
};

Result<DpTable> RunDp(int64_t n, int64_t max_buckets,
                      const BucketCostFn& cost, const Deadline& deadline) {
  RANGESYN_OBS_SPAN("histogram.dp.solve");
  // The table is the DP's big allocation — O(n * B) cells; the failpoint
  // models the allocation failing before any scratch is committed.
  RANGESYN_FAILPOINT("alloc.interval_dp");
  RANGESYN_RETURN_IF_DEADLINE(deadline, "histogram.dp.deadline",
                              "interval DP");
  DpTable t;
  t.n = n;
  t.max_buckets = max_buckets;
  t.best.assign(static_cast<size_t>(max_buckets) + 1,
                std::vector<double>(static_cast<size_t>(n) + 1, kInf));
  t.parent.assign(static_cast<size_t>(max_buckets) + 1,
                  std::vector<int64_t>(static_cast<size_t>(n) + 1, -1));
  t.best[0][0] = 0.0;
  // Row k depends only on row k-1, so each row fills its cells in parallel
  // over the end index i. A cell's inner minimization scans boundaries j
  // in ascending order with a strict '<', exactly as the serial loop does,
  // so ties break toward the lowest j no matter how cells are distributed
  // over threads: the parallel table (and hence the reconstructed
  // partition and cost) is bit-identical to a serial fill.
  //
  // Instrumentation is accumulated per chunk and flushed with two atomic
  // adds, so the O(n^2 B) inner loop never touches an atomic.
  std::atomic<uint64_t> cells{0};
  std::atomic<uint64_t> transitions{0};
  // ~8 chunks per thread bound scheduling overhead while the triangular
  // work profile (cell i costs O(i)) still load-balances via chunk claims.
  const int64_t grain = std::max<int64_t>(
      8, (n + 1) / (8 * static_cast<int64_t>(GlobalThreads())));
  for (int64_t k = 1; k <= max_buckets; ++k) {
    auto& bk = t.best[static_cast<size_t>(k)];
    auto& pk = t.parent[static_cast<size_t>(k)];
    const auto& prev = t.best[static_cast<size_t>(k - 1)];
    // The deadline is observed once per row chunk: an expired chunk
    // returns DeadlineExceeded without touching its cells, and
    // ParallelForStatus reports the first failing chunk in chunk order.
    RANGESYN_RETURN_IF_ERROR(ParallelForStatus(
        k, n + 1, grain, [&](int64_t i_begin, int64_t i_end) -> Status {
      RANGESYN_RETURN_IF_ERROR(deadline.Check("interval DP row"));
      uint64_t chunk_cells = 0;
      uint64_t chunk_transitions = 0;
      for (int64_t i = i_begin; i < i_end; ++i) {
        ++chunk_cells;
        double best_cost = kInf;
        int64_t best_j = -1;
        for (int64_t j = k - 1; j < i; ++j) {
          const double pj = prev[static_cast<size_t>(j)];
          if (pj == kInf) continue;
          ++chunk_transitions;
          const double c = pj + cost(j + 1, i);
          if (c < best_cost) {
            best_cost = c;
            best_j = j;
          }
        }
        bk[static_cast<size_t>(i)] = best_cost;
        pk[static_cast<size_t>(i)] = best_j;
      }
      cells.fetch_add(chunk_cells, std::memory_order_relaxed);
      transitions.fetch_add(chunk_transitions, std::memory_order_relaxed);
      return OkStatus();
    }));
  }
  RANGESYN_OBS_COUNTER_INC("histogram.dp.solves");
  RANGESYN_OBS_COUNTER_ADD("histogram.dp.cells", cells.load());
  RANGESYN_OBS_COUNTER_ADD("histogram.dp.transitions", transitions.load());
  return t;
}

Result<IntervalDpResult> ExtractSolution(const DpTable& t, int64_t k) {
  const double cost = t.best[static_cast<size_t>(k)][static_cast<size_t>(t.n)];
  if (cost == kInf) {
    return InternalError("interval DP produced no feasible solution");
  }
  std::vector<int64_t> ends;
  int64_t i = t.n;
  for (int64_t kk = k; kk >= 1; --kk) {
    ends.push_back(i);
    i = t.parent[static_cast<size_t>(kk)][static_cast<size_t>(i)];
    RANGESYN_CHECK_GE(i, 0);
  }
  RANGESYN_CHECK_EQ(i, 0);
  std::reverse(ends.begin(), ends.end());
  IntervalDpResult out;
  RANGESYN_ASSIGN_OR_RETURN(out.partition, Partition::FromEnds(t.n, ends));
  out.cost = cost;
  out.buckets_used = k;
  return out;
}

}  // namespace

Result<IntervalDpResult> SolveIntervalDp(int64_t n, int64_t max_buckets,
                                         const BucketCostFn& cost,
                                         bool exact_buckets,
                                         const Deadline& deadline) {
  if (n < 1) return InvalidArgumentError("SolveIntervalDp: n must be >= 1");
  if (max_buckets < 1) {
    return InvalidArgumentError("SolveIntervalDp: max_buckets must be >= 1");
  }
  const int64_t b = std::min(max_buckets, n);
  if (exact_buckets && max_buckets > n) {
    return InvalidArgumentError(
        "SolveIntervalDp: cannot use more buckets than elements");
  }
  RANGESYN_ASSIGN_OR_RETURN(const DpTable t, RunDp(n, b, cost, deadline));
  if (exact_buckets) {
    Result<IntervalDpResult> r = ExtractSolution(t, b);
#ifdef RANGESYN_AUDIT
    if (r.ok()) AuditDpSolution(n, max_buckets, cost, r.value(), true);
#endif
    return r;
  }
  // "At most" semantics: pick the best k (more buckets can hurt some cost
  // models, e.g. SAP-style costs, so we do not assume monotonicity).
  int64_t best_k = 1;
  double best_cost = kInf;
  // analyze: waive(SA-105) O(B) scan over the finished DP table with an
  // O(1) body; RunDp above polled the deadline throughout the fill.
  for (int64_t k = 1; k <= b; ++k) {
    const double c = t.best[static_cast<size_t>(k)][static_cast<size_t>(n)];
    if (c < best_cost) {
      best_cost = c;
      best_k = k;
    }
  }
  Result<IntervalDpResult> r = ExtractSolution(t, best_k);
#ifdef RANGESYN_AUDIT
  if (r.ok()) AuditDpSolution(n, max_buckets, cost, r.value(), false);
#endif
  return r;
}

Result<std::vector<IntervalDpResult>> SolveIntervalDpAllK(
    int64_t n, int64_t max_buckets, const BucketCostFn& cost,
    const Deadline& deadline) {
  if (n < 1) return InvalidArgumentError("SolveIntervalDpAllK: n >= 1");
  if (max_buckets < 1) {
    return InvalidArgumentError("SolveIntervalDpAllK: max_buckets >= 1");
  }
  const int64_t b = std::min(max_buckets, n);
  RANGESYN_ASSIGN_OR_RETURN(const DpTable t, RunDp(n, b, cost, deadline));
  std::vector<IntervalDpResult> out;
  out.reserve(static_cast<size_t>(b));
  for (int64_t k = 1; k <= b; ++k) {
    RANGESYN_RETURN_IF_DEADLINE(deadline, "histogram.dp.deadline",
                                "interval DP extraction");
    RANGESYN_ASSIGN_OR_RETURN(IntervalDpResult r, ExtractSolution(t, k));
#ifdef RANGESYN_AUDIT
    AuditDpSolution(n, k, cost, r, true);
#endif
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace rangesyn
