#ifndef RANGESYN_HISTOGRAM_REOPT_H_
#define RANGESYN_HISTOGRAM_REOPT_H_

#include <vector>

#include "core/result.h"
#include "histogram/histogram.h"
#include "histogram/partition.h"
#include "linalg/matrix.h"

namespace rangesyn {

/// The re-optimization post-pass of the paper's §5: with bucket boundaries
/// fixed, the (unrounded) eq.(1) estimate is linear in the stored values,
///   ŝ[a,b] = Σ_{t in [a,b]} x_{buck(t)},
/// so the all-ranges SSE is the quadratic x^T Q x - 2 rhs^T x + c and the
/// optimal stored values solve Q x = rhs.

/// Normal equations of the all-ranges SSE for `partition` over `data`.
struct NormalEquations {
  Matrix q;                  // B x B, Q_kj = Σ_ranges c_k c_j
  std::vector<double> rhs;   // rhs_k = Σ_ranges s[a,b] * c_k(a,b)
  double c0 = 0.0;           // Σ_ranges s[a,b]^2

  /// SSE the value vector `x` would achieve (all ranges, unrounded).
  double SseAt(const std::vector<double>& x) const;
};

/// Closed-form assembly in O(n + B^2) (DESIGN.md §3.4).
Result<NormalEquations> AssembleNormalEquations(
    const std::vector<int64_t>& data, const Partition& partition);

/// Direct O(n^2 B) assembly by enumerating every range; the oracle the
/// closed form is tested against.
Result<NormalEquations> AssembleNormalEquationsBrute(
    const std::vector<int64_t>& data, const Partition& partition);

/// Solves for the SSE-optimal stored values of `partition`.
Result<std::vector<double>> OptimalBucketValues(
    const std::vector<int64_t>& data, const Partition& partition);

/// Re-optimizes an existing average-per-bucket histogram: same boundaries,
/// least-squares stored values, unrounded answering. The result's name is
/// "<base>-reopt". Never worse than `base` in all-ranges SSE (up to the
/// sub-unit effect of `base`'s rounding mode).
Result<AvgHistogram> Reoptimize(const std::vector<int64_t>& data,
                                const AvgHistogram& base);

}  // namespace rangesyn

#endif  // RANGESYN_HISTOGRAM_REOPT_H_
