#include "histogram/quadratic_fit.h"

#include <cmath>

namespace rangesyn {
namespace {

/// Solves the symmetric 3x3 system G c = b by Gaussian elimination with
/// partial pivoting; returns false when (numerically) singular.
bool Solve3x3(double g[3][3], double b[3], double c[3]) {
  int perm[3] = {0, 1, 2};
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::fabs(g[perm[r]][col]) > std::fabs(g[perm[pivot]][col])) {
        pivot = r;
      }
    }
    std::swap(perm[col], perm[pivot]);
    const double d = g[perm[col]][col];
    if (std::fabs(d) < 1e-12) return false;
    for (int r = col + 1; r < 3; ++r) {
      const double f = g[perm[r]][col] / d;
      for (int cc = col; cc < 3; ++cc) g[perm[r]][cc] -= f * g[perm[col]][cc];
      b[perm[r]] -= f * b[perm[col]];
    }
  }
  for (int col = 2; col >= 0; --col) {
    double acc = b[perm[col]];
    for (int cc = col + 1; cc < 3; ++cc) acc -= g[perm[col]][cc] * c[cc];
    c[col] = acc / g[perm[col]][col];
  }
  return true;
}

}  // namespace

QuadraticFit FitQuadraticFromMoments(double m, double sx, double sx2,
                                     double sx3, double sx4, double sy,
                                     double sxy, double sx2y, double sy2) {
  QuadraticFit fit;
  if (m <= 0.5) return fit;
  if (m < 1.5) {
    // One point: exact constant.
    fit.c0 = sy / m;
    fit.ssr = 0.0;
    return fit;
  }
  if (m < 2.5) {
    // Two points: exact line through both (Sxx > 0 unless x's coincide).
    const double sxx = sx2 - sx * sx / m;
    if (sxx > 1e-12) {
      fit.c1 = (sxy - sx * sy / m) / sxx;
      fit.c0 = (sy - fit.c1 * sx) / m;
      fit.ssr = 0.0;
      return fit;
    }
    fit.c0 = sy / m;
    fit.ssr = std::fmax(0.0, sy2 - sy * sy / m);
    return fit;
  }
  double g[3][3] = {{m, sx, sx2}, {sx, sx2, sx3}, {sx2, sx3, sx4}};
  double b[3] = {sy, sxy, sx2y};
  double c[3] = {0, 0, 0};
  if (!Solve3x3(g, b, c)) {
    // Fall back to the linear fit (x's nearly collinear in x² space).
    const double sxx = sx2 - sx * sx / m;
    if (sxx > 1e-12) {
      fit.c1 = (sxy - sx * sy / m) / sxx;
      fit.c0 = (sy - fit.c1 * sx) / m;
      const double syy = std::fmax(0.0, sy2 - sy * sy / m);
      const double sxy_c = sxy - sx * sy / m;
      fit.ssr = std::fmax(0.0, syy - sxy_c * sxy_c / sxx);
    } else {
      fit.c0 = sy / m;
      fit.ssr = std::fmax(0.0, sy2 - sy * sy / m);
    }
    return fit;
  }
  fit.c0 = c[0];
  fit.c1 = c[1];
  fit.c2 = c[2];
  // SSR = y'y - c'X'y for least squares.
  fit.ssr = std::fmax(0.0, sy2 - (c[0] * sy + c[1] * sxy + c[2] * sx2y));
  return fit;
}

}  // namespace rangesyn
