#ifndef RANGESYN_HISTOGRAM_BUCKET_COST_H_
#define RANGESYN_HISTOGRAM_BUCKET_COST_H_

#include <cstdint>
#include <vector>

#include "histogram/prefix_stats.h"

namespace rangesyn {

/// O(1) closed-form bucket cost oracles over a fixed dataset, built from
/// the PrefixStats window moments. All costs are *unrounded* (real-valued
/// answering); the rounded variants used by the pseudo-polynomial OPT-A
/// program are computed exactly in opt_a_dp.cc.
///
/// Derivations are in DESIGN.md §3. In all methods [l, r] is a candidate
/// bucket, 1 <= l <= r <= n.
class BucketCosts {
 public:
  /// `stats` must outlive this object.
  explicit BucketCosts(const PrefixStats& stats) : stats_(stats) {}

  int64_t n() const { return stats_.n(); }

  /// Sum over all intra-bucket ranges (a,b), l <= a <= b <= r, of
  /// (s[a,b] - (b-a+1)*avg)^2 where avg = s[l,r]/(r-l+1).
  double Intra(int64_t l, int64_t r) const;

  /// SAP0 additive bucket cost (DESIGN.md §3.2):
  ///   Intra + (n-r) * SS_suffix + (l-1) * SS_prefix
  /// where SS_suffix/SS_prefix are the sums of squared deviations of the
  /// bucket suffix/prefix sums from their means. Summing this over the
  /// buckets of a partition equals the exact all-ranges SSE of the SAP0
  /// histogram on that partition (Decomposition Lemma).
  double Sap0Cost(int64_t l, int64_t r) const;

  /// SAP1 additive bucket cost: Intra + (n-r)*SSR_suffix + (l-1)*SSR_prefix
  /// with least-squares residual sums of the suffix/prefix regressions.
  double Sap1Cost(int64_t l, int64_t r) const;

  /// SAP2 additive bucket cost: Intra + (n-r)*SSR2_suffix + (l-1)*
  /// SSR2_prefix with least-squares *quadratic* residual sums. The same
  /// Decomposition Lemma argument applies (with-intercept LS residuals sum
  /// to zero), so the DP over this cost is exactly optimal for the SAP2
  /// representation.
  double Sap2Cost(int64_t l, int64_t r) const;

  /// A0 heuristic bucket cost: Intra + (n-r)*sum u'^2 + (l-1)*sum v'^2 with
  /// the eq. (1) partial-piece errors u', v'; ignores the (non-vanishing)
  /// cross term, as the paper's A0 heuristic does.
  double A0Cost(int64_t l, int64_t r) const;

  /// Sum of eq.(1) left-piece errors u'_a over a in [l,r] and of squared
  /// errors; exposed for the OPT-A machinery and tests.
  double SumU(int64_t l, int64_t r) const;
  double SumU2(int64_t l, int64_t r) const;
  /// Same for right-piece errors v'_b.
  double SumV(int64_t l, int64_t r) const;
  double SumV2(int64_t l, int64_t r) const;

 private:
  struct WindowQ {
    double sum_q;   // sum of Q[t] over the window, Q[t] = P[t] - mu*t
    double sum_q2;  // sum of Q[t]^2
  };
  /// Window moments of Q[t] = P[t] - mu*t over t in [x, y].
  WindowQ QMoments(int64_t x, int64_t y, double mu) const;

  double Mu(int64_t l, int64_t r) const {
    return static_cast<double>(stats_.Sum(l, r)) /
           static_cast<double>(r - l + 1);
  }

  const PrefixStats& stats_;
};

/// Weighted V-optimal bucket costs for point queries:
///   cost(l,r) = sum_{i=l..r} w_i * (A[i] - mu_w)^2,
/// with mu_w the w-weighted bucket mean. With w_i = i(n-i+1) (the number of
/// ranges containing i) this is the paper's POINT-OPT construction; with
/// w_i = 1 it is the classical V-optimal histogram of [6].
class WeightedPointCosts {
 public:
  /// `weights` must be positive and have the same size as `data`.
  WeightedPointCosts(const std::vector<int64_t>& data,
                     const std::vector<double>& weights);

  /// Weights w_i = i(n-i+1), i = 1..n.
  static std::vector<double> RangeCoverageWeights(int64_t n);
  /// Weights w_i = 1.
  static std::vector<double> UniformWeights(int64_t n);

  int64_t n() const { return n_; }

  double Cost(int64_t l, int64_t r) const;

  /// The w-weighted mean of A over [l, r] (the optimal stored value).
  double WeightedMean(int64_t l, int64_t r) const;

 private:
  int64_t n_;
  std::vector<double> cum_w_;    // prefix sums of w
  std::vector<double> cum_wa_;   // prefix sums of w*A
  std::vector<double> cum_wa2_;  // prefix sums of w*A^2
};

}  // namespace rangesyn

#endif  // RANGESYN_HISTOGRAM_BUCKET_COST_H_
