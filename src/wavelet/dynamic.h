#ifndef RANGESYN_WAVELET_DYNAMIC_H_
#define RANGESYN_WAVELET_DYNAMIC_H_

#include <cstdint>
#include <vector>

#include "core/result.h"
#include "wavelet/synopsis.h"

namespace rangesyn {

/// Dynamic maintenance of the range-optimal wavelet statistics (the §3
/// related-work thread: "dynamic maintenance of such statistics"). A point
/// update A[i] += delta changes the prefix-sum vector P by a constant on
/// the suffix [i, n]; in the Haar basis a suffix-constant bump projects
/// only onto the O(log n) basis vectors whose support straddles position
/// i (plus the DC, which range answering ignores). So the maintainer
/// keeps the full coefficient vector, applies updates in O(log n), and
/// snapshots a provably range-optimal B-term synopsis on demand.
///
/// Memory is O(n) (the exact coefficient vector) — this is the exact
/// maintenance counterpart of BuildWaveRangeOpt, not a sublinear sketch.
class DynamicRangeSynopsisMaintainer {
 public:
  /// Builds the initial coefficients from `data` (counts >= 0).
  static Result<DynamicRangeSynopsisMaintainer> Create(
      const std::vector<int64_t>& data);

  int64_t n() const { return n_; }
  int64_t padded_size() const { return padded_; }
  int64_t updates_applied() const { return updates_; }

  /// Applies A[i] += delta (1-based i). Fails if the resulting count
  /// would be negative. O(log n).
  Status ApplyUpdate(int64_t i, int64_t delta);

  /// Current exact count A[i]; O(1).
  int64_t CountAt(int64_t i) const {
    return data_[static_cast<size_t>(i - 1)];
  }

  /// The provably range-optimal B-coefficient synopsis of the *current*
  /// data: top `budget` non-DC coefficients by magnitude. O(n) per call.
  Result<WaveletSynopsis> Snapshot(int64_t budget) const;

 private:
  DynamicRangeSynopsisMaintainer() = default;

  int64_t n_ = 0;
  int64_t padded_ = 0;
  int64_t updates_ = 0;
  std::vector<int64_t> data_;     // current counts, for validation
  std::vector<double> coeffs_;    // exact Haar coefficients of P
};

}  // namespace rangesyn

#endif  // RANGESYN_WAVELET_DYNAMIC_H_
