#include "wavelet/selection.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "core/failpoint.h"
#include "core/logging.h"
#include "core/mathutil.h"
#include "core/threadpool.h"
#include "obs/obs.h"
#include "wavelet/haar.h"

namespace rangesyn {
namespace {

#ifdef RANGESYN_AUDIT
/// RANGESYN_AUDIT self-check for every top-budget selection (shared by
/// WAVE-POINT, TOPBB and WAVE-RANGE-OPT): the kept set must have the right
/// cardinality, and no dropped candidate may out-score a kept one — the
/// defining property of a top-B set, on which the paper's range-optimality
/// argument (Theorem 9) rests.
void AuditTopSelection(const std::vector<WaveletCoefficient>& kept,
                       const std::vector<double>& coeffs,
                       const std::vector<double>& scores, int64_t budget,
                       int64_t first_index) {
  const int64_t candidates =
      static_cast<int64_t>(coeffs.size()) - first_index;
  RANGESYN_CHECK_EQ(static_cast<int64_t>(kept.size()),
                    std::min(budget, candidates));
  std::vector<bool> is_kept(coeffs.size(), false);
  double min_kept = std::numeric_limits<double>::infinity();
  for (const WaveletCoefficient& c : kept) {
    RANGESYN_CHECK_GE(c.index, first_index);
    RANGESYN_CHECK_LT(c.index, static_cast<int64_t>(coeffs.size()));
    RANGESYN_CHECK(!is_kept[static_cast<size_t>(c.index)])
        << "selection audit: duplicate index " << c.index;
    is_kept[static_cast<size_t>(c.index)] = true;
    RANGESYN_CHECK_EQ(c.value, coeffs[static_cast<size_t>(c.index)]);
    min_kept = std::min(min_kept, scores[static_cast<size_t>(c.index)]);
  }
  for (int64_t k = first_index; k < static_cast<int64_t>(coeffs.size());
       ++k) {
    if (is_kept[static_cast<size_t>(k)]) continue;
    RANGESYN_CHECK_LE(scores[static_cast<size_t>(k)], min_kept)
        << "selection audit: dropped coefficient " << k
        << " out-scores a kept one";
  }
}
#endif  // RANGESYN_AUDIT

Status ValidateSelectionInput(const std::vector<int64_t>& data,
                              int64_t budget) {
  if (data.empty()) return InvalidArgumentError("wavelet: empty data");
  if (budget < 1) return InvalidArgumentError("wavelet: budget >= 1");
  for (int64_t v : data) {
    if (v < 0) return InvalidArgumentError("wavelet: negative count");
  }
  return OkStatus();
}

/// Transforms `data` zero-padded to the next power of two.
Result<std::vector<double>> TransformPaddedData(
    const std::vector<int64_t>& data) {
  const int64_t padded = static_cast<int64_t>(
      NextPowerOfTwo(static_cast<uint64_t>(data.size())));
  std::vector<double> v(static_cast<size_t>(padded), 0.0);
  for (size_t i = 0; i < data.size(); ++i) {
    v[i] = static_cast<double>(data[i]);
  }
  return HaarTransform(v);
}

/// Keeps the `budget` coefficients with the largest `score`, breaking ties
/// toward lower indices (coarser coefficients) for determinism.
///
/// Large candidate sets are sharded over the pool: each shard keeps its
/// own top-`keep` via partial_sort, and the shard winners (gathered in
/// shard index order) go through one final partial_sort. The comparator
/// (score desc, index asc) is a strict total order — indices are unique —
/// so the global top-`keep` set is unique and every sharding, including
/// the serial "one shard" run, selects exactly the same coefficients.
std::vector<WaveletCoefficient> KeepTop(
    const std::vector<double>& coeffs, const std::vector<double>& scores,
    int64_t budget, int64_t first_index) {
  RANGESYN_OBS_SPAN("wavelet.select.top");
  RANGESYN_OBS_COUNTER_ADD("wavelet.select.candidates",
                           static_cast<uint64_t>(coeffs.size()) -
                               static_cast<uint64_t>(first_index));
  const auto better = [&scores](int64_t x, int64_t y) {
    const double sx = scores[static_cast<size_t>(x)];
    const double sy = scores[static_cast<size_t>(y)];
    if (sx != sy) return sx > sy;
    return x < y;
  };
  const int64_t size = static_cast<int64_t>(coeffs.size());
  const int64_t total = size - first_index;
  const size_t keep =
      std::min<size_t>(static_cast<size_t>(budget),
                       static_cast<size_t>(std::max<int64_t>(total, 0)));
  // Shards must dominate the per-shard keep for the split to pay off.
  const int64_t grain =
      std::max<int64_t>(4096, static_cast<int64_t>(keep) * 4);
  const int64_t num_shards = total <= 0 ? 0 : (total + grain - 1) / grain;
  std::vector<int64_t> order;
  if (num_shards > 1) {
    std::vector<std::vector<int64_t>> shard_top(
        static_cast<size_t>(num_shards));
    ParallelFor(first_index, size, grain, [&](int64_t lo, int64_t hi) {
      std::vector<int64_t> local;
      local.reserve(static_cast<size_t>(hi - lo));
      for (int64_t k = lo; k < hi; ++k) local.push_back(k);
      const size_t shard_keep = std::min(keep, local.size());
      std::partial_sort(local.begin(), local.begin() + shard_keep,
                        local.end(), better);
      local.resize(shard_keep);
      shard_top[static_cast<size_t>((lo - first_index) / grain)] =
          std::move(local);
    });
    for (const std::vector<int64_t>& top : shard_top) {
      order.insert(order.end(), top.begin(), top.end());
    }
  } else {
    order.reserve(static_cast<size_t>(std::max<int64_t>(total, 0)));
    for (int64_t k = first_index; k < size; ++k) order.push_back(k);
  }
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    better);
  std::vector<WaveletCoefficient> out;
  out.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    const int64_t k = order[i];
    out.push_back({k, coeffs[static_cast<size_t>(k)]});
  }
  std::sort(out.begin(), out.end(),
            [](const WaveletCoefficient& a, const WaveletCoefficient& b) {
              return a.index < b.index;
            });
  RANGESYN_OBS_COUNTER_ADD("wavelet.coeffs.kept",
                           static_cast<uint64_t>(out.size()));
#ifdef RANGESYN_AUDIT
  AuditTopSelection(out, coeffs, scores, budget, first_index);
#endif
  return out;
}

}  // namespace

Result<WaveletSynopsis> BuildWavePoint(const std::vector<int64_t>& data,
                                       int64_t budget,
                                       const Deadline& deadline) {
  RANGESYN_RETURN_IF_ERROR(ValidateSelectionInput(data, budget));
  RANGESYN_OBS_SPAN("wavelet.build.wave_point");
  // The padded transform vector is the build's big allocation.
  RANGESYN_FAILPOINT("alloc.wavelet");
  RANGESYN_RETURN_IF_DEADLINE(deadline, "wavelet.build.deadline",
                              "WAVE-POINT transform");
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                            TransformPaddedData(data));
  RANGESYN_RETURN_IF_DEADLINE(deadline, "wavelet.build.deadline",
                              "WAVE-POINT selection");
  std::vector<double> scores(coeffs.size());
  // analyze: waive(SA-105) O(n) scoring scan with an O(1) body, bracketed
  // by the deadline check above and the polled KeepTop selection below.
  for (size_t k = 0; k < coeffs.size(); ++k) {
    scores[k] = std::fabs(coeffs[k]);
  }
  return WaveletSynopsis::Create(
      KeepTop(coeffs, scores, budget, /*first_index=*/0),
      static_cast<int64_t>(coeffs.size()),
      static_cast<int64_t>(data.size()), WaveletDomain::kData, "WAVE-POINT");
}

Result<WaveletSynopsis> BuildTopBB(const std::vector<int64_t>& data,
                                   int64_t budget,
                                   const Deadline& deadline) {
  RANGESYN_RETURN_IF_ERROR(ValidateSelectionInput(data, budget));
  RANGESYN_OBS_SPAN("wavelet.build.topbb");
  RANGESYN_FAILPOINT("alloc.wavelet");
  RANGESYN_RETURN_IF_DEADLINE(deadline, "wavelet.build.deadline",
                              "TOPBB transform");
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                            TransformPaddedData(data));
  RANGESYN_RETURN_IF_DEADLINE(deadline, "wavelet.build.deadline",
                              "TOPBB scoring");
  const int64_t padded = static_cast<int64_t>(coeffs.size());
  std::vector<double> scores(coeffs.size());
  // analyze: waive(SA-105) O(n) scoring scan (O(1) closed-form weight per
  // coefficient), bracketed by the deadline check above.
  for (int64_t k = 0; k < padded; ++k) {
    scores[static_cast<size_t>(k)] =
        coeffs[static_cast<size_t>(k)] * coeffs[static_cast<size_t>(k)] *
        BasisAllRangesWeight(padded, k);
  }
  return WaveletSynopsis::Create(
      KeepTop(coeffs, scores, budget, /*first_index=*/0), padded,
      static_cast<int64_t>(data.size()), WaveletDomain::kData, "TOPBB");
}

Result<WaveletSynopsis> BuildWaveRangeOpt(const std::vector<int64_t>& data,
                                          int64_t budget,
                                          const Deadline& deadline) {
  RANGESYN_RETURN_IF_ERROR(ValidateSelectionInput(data, budget));
  RANGESYN_OBS_SPAN("wavelet.build.range_opt");
  RANGESYN_FAILPOINT("alloc.wavelet");
  RANGESYN_RETURN_IF_DEADLINE(deadline, "wavelet.build.deadline",
                              "WAVE-RANGE-OPT transform");
  const int64_t n = static_cast<int64_t>(data.size());
  const int64_t padded = static_cast<int64_t>(
      NextPowerOfTwo(static_cast<uint64_t>(n) + 1));
  // Prefix-sum vector P[0..n], constant-extended into the padding so the
  // padded region adds no artificial jumps.
  std::vector<double> p(static_cast<size_t>(padded), 0.0);
  int64_t acc = 0;
  // analyze: waive(SA-105) O(n) prefix-sum accumulation with an O(1) body,
  // bracketed by the deadline check above and the polled transform below.
  for (int64_t t = 1; t <= n; ++t) {
    acc += data[static_cast<size_t>(t - 1)];
    p[static_cast<size_t>(t)] = static_cast<double>(acc);
  }
  // analyze: waive(SA-105) O(padded-n) constant extension, same bracket.
  for (int64_t t = n + 1; t < padded; ++t) {
    p[static_cast<size_t>(t)] = static_cast<double>(acc);
  }
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> coeffs, HaarTransform(p));
  RANGESYN_RETURN_IF_DEADLINE(deadline, "wavelet.build.deadline",
                              "WAVE-RANGE-OPT selection");
  std::vector<double> scores(coeffs.size());
  // analyze: waive(SA-105) O(n) scoring scan with an O(1) body, bracketed
  // by the deadline check above.
  for (size_t k = 0; k < coeffs.size(); ++k) {
    scores[k] = std::fabs(coeffs[k]);
  }
  // Skip the DC (index 0): it cancels in P̂[b] - P̂[a-1], so storing it
  // would waste budget — this is exactly why top-B of the rest is optimal.
  return WaveletSynopsis::Create(
      KeepTop(coeffs, scores, budget, /*first_index=*/1), padded, n,
      WaveletDomain::kPrefix, "WAVE-RANGE-OPT");
}

Result<double> PredictPrefixSynopsisSse(const std::vector<int64_t>& data,
                                        const WaveletSynopsis& synopsis) {
  if (synopsis.domain() != WaveletDomain::kPrefix) {
    return InvalidArgumentError(
        "PredictPrefixSynopsisSse: synopsis is not prefix-domain");
  }
  const int64_t n = static_cast<int64_t>(data.size());
  if (synopsis.domain_size() != n) {
    return InvalidArgumentError("PredictPrefixSynopsisSse: size mismatch");
  }
  if (synopsis.padded_size() != n + 1) {
    return FailedPreconditionError(
        "PredictPrefixSynopsisSse: exact prediction requires n+1 to be a "
        "power of two");
  }
  const int64_t padded = synopsis.padded_size();
  std::vector<double> p(static_cast<size_t>(padded), 0.0);
  int64_t acc = 0;
  for (int64_t t = 1; t <= n; ++t) {
    acc += data[static_cast<size_t>(t - 1)];
    p[static_cast<size_t>(t)] = static_cast<double>(acc);
  }
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> coeffs, HaarTransform(p));
  // SSE = (n+1) * sum of squared dropped non-DC coefficients.
  std::vector<bool> kept(coeffs.size(), false);
  for (const WaveletCoefficient& c : synopsis.coefficients()) {
    kept[static_cast<size_t>(c.index)] = true;
  }
  double dropped_energy = 0.0;
  for (size_t k = 1; k < coeffs.size(); ++k) {
    if (!kept[k]) dropped_energy += coeffs[k] * coeffs[k];
  }
  return static_cast<double>(n + 1) * dropped_energy;
}

}  // namespace rangesyn
