#include "wavelet/synopsis.h"

#include <algorithm>

#include "core/logging.h"
#include "core/mathutil.h"
#include "core/strings.h"
#include "wavelet/haar.h"

namespace rangesyn {

WaveletSynopsis::WaveletSynopsis(
    std::vector<WaveletCoefficient> coefficients, int64_t padded_size,
    int64_t domain_size, WaveletDomain domain, std::string name)
    : coefficients_(std::move(coefficients)),
      padded_size_(padded_size),
      n_(domain_size),
      domain_(domain),
      name_(std::move(name)) {
  by_index_.reserve(coefficients_.size());
  for (const WaveletCoefficient& c : coefficients_) {
    by_index_.emplace(c.index, c.value);
  }
}

Result<WaveletSynopsis> WaveletSynopsis::Create(
    std::vector<WaveletCoefficient> coefficients, int64_t padded_size,
    int64_t domain_size, WaveletDomain domain, std::string name) {
  if (padded_size < 1 || !IsPowerOfTwo(static_cast<uint64_t>(padded_size))) {
    return InvalidArgumentError("WaveletSynopsis: bad padded_size");
  }
  if (domain_size < 1 ||
      (domain == WaveletDomain::kData && domain_size > padded_size) ||
      (domain == WaveletDomain::kPrefix && domain_size + 1 > padded_size)) {
    return InvalidArgumentError("WaveletSynopsis: bad domain_size");
  }
  for (const WaveletCoefficient& c : coefficients) {
    if (c.index < 0 || c.index >= padded_size) {
      return InvalidArgumentError(
          StrCat("WaveletSynopsis: coefficient index ", c.index,
                 " out of range"));
    }
  }
  WaveletSynopsis out(std::move(coefficients), padded_size, domain_size,
                      domain, std::move(name));
  if (out.by_index_.size() != out.coefficients_.size()) {
    return InvalidArgumentError(
        "WaveletSynopsis: duplicate coefficient indices");
  }
  return out;
}

double WaveletSynopsis::ReconstructAt(int64_t t) const {
  RANGESYN_DCHECK(t >= 0 && t < padded_size_);
  double v = 0.0;
  ForEachAncestor(padded_size_, t, [&](int64_t k) {
    const auto it = by_index_.find(k);
    if (it != by_index_.end()) {
      v += it->second * BasisValue(padded_size_, k, t);
    }
  });
  return v;
}

double WaveletSynopsis::ReconstructRangeSum(int64_t lo, int64_t hi) const {
  RANGESYN_DCHECK(lo >= 0 && lo <= hi && hi < padded_size_);
  // A coefficient has nonzero sum over [lo, hi] only if its support
  // straddles lo-1|lo or hi|hi+1, i.e. it is an ancestor of lo or hi (or
  // the DC). Walk those O(log n) candidates allocation-free;
  // ForEachAncestorPair visits them in the same ascending deduplicated
  // order the old sorted candidate vector produced, so the summation
  // order (and the float result) is unchanged.
  double v = 0.0;
  ForEachAncestorPair(padded_size_, lo, hi, [&](int64_t k) {
    const auto it = by_index_.find(k);
    if (it != by_index_.end()) {
      v += it->second * BasisRangeSum(padded_size_, k, lo, hi);
    }
  });
  return v;
}

double WaveletSynopsis::EstimatePoint(int64_t i) const {
  RANGESYN_DCHECK(i >= 1 && i <= n_);
  if (domain_ == WaveletDomain::kData) return ReconstructAt(i - 1);
  // Prefix domain: A[i] = P[i] - P[i-1].
  return ReconstructAt(i) - ReconstructAt(i - 1);
}

double WaveletSynopsis::EstimateRange(int64_t a, int64_t b) const {
  RANGESYN_DCHECK(a >= 1 && a <= b && b <= n_);
  if (domain_ == WaveletDomain::kData) {
    return ReconstructRangeSum(a - 1, b - 1);
  }
  // Prefix domain: s[a,b] = P[b] - P[a-1]; P[t] sits at slot t.
  return ReconstructAt(b) - ReconstructAt(a - 1);
}

}  // namespace rangesyn
