#ifndef RANGESYN_WAVELET_HAAR_H_
#define RANGESYN_WAVELET_HAAR_H_

#include <cstdint>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/result.h"
#include "linalg/matrix.h"

namespace rangesyn {

/// Orthonormal 1-D Haar transform of a vector whose size is a power of
/// two. Coefficient layout: index 0 is the DC (overall average scaled by
/// sqrt(N)); index k in [2^j, 2^(j+1)) is the detail coefficient at level j
/// with support length N / 2^j starting at (k - 2^j) * N / 2^j. The basis
/// vector for k >= 1 is +1/sqrt(s) on the first half of its support and
/// -1/sqrt(s) on the second half (s = support length), so the transform is
/// orthonormal and energy-preserving.
Result<std::vector<double>> HaarTransform(const std::vector<double>& v);

/// Inverse of HaarTransform.
Result<std::vector<double>> HaarInverse(const std::vector<double>& coeffs);

/// Geometry of one Haar basis vector.
struct HaarBasis {
  int64_t start = 0;    // 0-based support start
  int64_t length = 0;   // support length (power of two)
  double height = 0.0;  // +height on first half, -height on second
  bool is_dc = false;   // index 0: constant 1/sqrt(N)
};

/// Describes basis vector `k` of the size-`n` transform (n a power of two,
/// 0 <= k < n).
HaarBasis DescribeBasis(int64_t n, int64_t k);

/// Value of basis vector `k` at 0-based position `t` (0 outside support).
double BasisValue(int64_t n, int64_t k, int64_t t);

/// Sum of basis vector `k` over 0-based positions [lo, hi] inclusive, in
/// O(1). This is the contribution weight of coefficient k to the range sum
/// over [lo, hi].
double BasisRangeSum(int64_t n, int64_t k, int64_t lo, int64_t hi);

/// Sum over all ranges 1 <= a <= b <= n of BasisRangeSum(n,k,a-1,b-1)^2 in
/// O(1) — the aggregate weight with which coefficient k enters the
/// all-ranges SSE (used by the TOPBB greedy selection).
double BasisAllRangesWeight(int64_t n, int64_t k);

/// The 0-based coefficient indices whose basis vectors have a nonzero
/// range sum over some range with an endpoint at 0-based position `t`:
/// the DC plus the ancestors of leaf t at every level — at most log2(n)+1
/// indices. Every other coefficient contributes zero to such range sums.
std::vector<int64_t> AncestorIndices(int64_t n, int64_t t);

/// Allocation-free visit of the AncestorIndices(n, t) sequence in the
/// same strictly ascending index order (DC first, then one ancestor per
/// level). The per-query reconstruction paths use this instead of the
/// vector-returning form so the estimator hot path never allocates
/// (rangesyn-analyze SA-101).
template <typename Fn>
RANGESYN_HOT_PATH inline void ForEachAncestor(int64_t n, int64_t t,
                                              Fn&& fn) {
  fn(static_cast<int64_t>(0));  // DC
  for (int64_t level_size = n, base = 1; level_size > 1;
       level_size /= 2, base *= 2) {
    fn(base + t / level_size);
  }
}

/// Allocation-free visit of the sorted, deduplicated union of
/// AncestorIndices(n, lo) and AncestorIndices(n, hi) for lo <= hi. At
/// each level both ancestors lie in [base, 2*base) with a_lo <= a_hi, so
/// emitting a_lo then a_hi (when distinct) level by level reproduces the
/// sort-then-unique merge order exactly — callers that sum float
/// contributions in visit order get bit-identical results to the old
/// vector-based candidate walk.
template <typename Fn>
RANGESYN_HOT_PATH inline void ForEachAncestorPair(int64_t n, int64_t lo,
                                                  int64_t hi, Fn&& fn) {
  fn(static_cast<int64_t>(0));  // DC
  for (int64_t level_size = n, base = 1; level_size > 1;
       level_size /= 2, base *= 2) {
    const int64_t a_lo = base + lo / level_size;
    const int64_t a_hi = base + hi / level_size;
    fn(a_lo);
    if (a_hi != a_lo) fn(a_hi);
  }
}

/// Orthonormal 2-D Haar transform (rows then columns) of a square matrix
/// with power-of-two side; used to validate the virtual-AA formulation of
/// the paper's Theorem 9 on small inputs.
Result<Matrix> Haar2D(const Matrix& m);

/// Inverse of Haar2D.
Result<Matrix> Haar2DInverse(const Matrix& m);

}  // namespace rangesyn

#endif  // RANGESYN_WAVELET_HAAR_H_
