#ifndef RANGESYN_WAVELET_SELECTION_H_
#define RANGESYN_WAVELET_SELECTION_H_

#include <cstdint>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/deadline.h"
#include "core/result.h"
#include "wavelet/synopsis.h"

namespace rangesyn {

/// Coefficient-selection strategies for Haar synopses of an integer
/// attribute-value distribution. Each builder retains (at most) `budget`
/// coefficients, i.e. 2*budget storage words.
///
/// Each builder accepts an optional cooperative `deadline`, observed
/// between the transform / scoring / selection stages; expiry fails the
/// build with DeadlineExceeded, which the engine factory's fallback ladder
/// converts into a cheaper selection (DESIGN.md §9).

/// Classical selection from the prior literature the paper compares
/// against ([11,17]): transform the data vector and keep the `budget`
/// largest-magnitude (orthonormal) coefficients — optimal for *point*
/// query SSE, with no range-query guarantee. Name: "WAVE-POINT".
RANGESYN_CANCELLABLE Result<WaveletSynopsis> BuildWavePoint(const std::vector<int64_t>& data,
                                       int64_t budget,
                                       const Deadline& deadline = Deadline());

/// The paper's TOPBB heuristic: still data-domain coefficients, but ranked
/// by their individual contribution to the all-ranges SSE,
/// c_k^2 * W_k with W_k = sum over ranges of the basis range-sum squared
/// (BasisAllRangesWeight). Interactions between dropped coefficients are
/// ignored, so this is greedy, not optimal. Name: "TOPBB".
RANGESYN_CANCELLABLE Result<WaveletSynopsis> BuildTopBB(const std::vector<int64_t>& data,
                                   int64_t budget,
                                   const Deadline& deadline = Deadline());

/// The provably range-optimal selection (paper Theorem 9 via the
/// prefix-sum domain, DESIGN.md §3.5): transform P[0..n], never store the
/// DC (it cancels in every range answer), keep the `budget`
/// largest-magnitude non-DC coefficients. When n+1 is a power of two the
/// retained set minimizes the all-ranges SSE over every possible set of
/// `budget` coefficients. Name: "WAVE-RANGE-OPT".
RANGESYN_CANCELLABLE Result<WaveletSynopsis> BuildWaveRangeOpt(
    const std::vector<int64_t>& data, int64_t budget,
    const Deadline& deadline = Deadline());

/// Exact all-ranges SSE of a kPrefix synopsis predicted from its dropped
/// coefficients: (n+1) * sum of dropped non-DC c^2 (valid when n+1 equals
/// the padded size). Exposed so tests can check the prediction against
/// brute-force evaluation.
Result<double> PredictPrefixSynopsisSse(const std::vector<int64_t>& data,
                                        const WaveletSynopsis& synopsis);

}  // namespace rangesyn

#endif  // RANGESYN_WAVELET_SELECTION_H_
