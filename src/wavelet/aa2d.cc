#include "wavelet/aa2d.h"

#include "core/logging.h"
#include "core/mathutil.h"

namespace rangesyn {
namespace {

Status ValidateAAInput(const std::vector<int64_t>& data) {
  if (data.empty()) return InvalidArgumentError("AA: empty data");
  for (int64_t v : data) {
    if (v < 0) return InvalidArgumentError("AA: negative count");
  }
  return OkStatus();
}

Matrix BuildAA(const std::vector<int64_t>& data, int64_t side) {
  const int64_t n = static_cast<int64_t>(data.size());
  Matrix aa(side, side);
  for (int64_t i = 0; i < n; ++i) {
    int64_t acc = 0;
    for (int64_t j = i; j < n; ++j) {
      acc += data[static_cast<size_t>(j)];
      aa(i, j) = static_cast<double>(acc);
    }
  }
  return aa;
}

}  // namespace

Result<Matrix> MaterializeAA(const std::vector<int64_t>& data) {
  RANGESYN_RETURN_IF_ERROR(ValidateAAInput(data));
  return BuildAA(data, static_cast<int64_t>(data.size()));
}

Result<Matrix> MaterializeAAPadded(const std::vector<int64_t>& data) {
  RANGESYN_RETURN_IF_ERROR(ValidateAAInput(data));
  const int64_t side = static_cast<int64_t>(
      NextPowerOfTwo(static_cast<uint64_t>(data.size())));
  return BuildAA(data, side);
}

double UpperTriangleSse(const Matrix& a, const Matrix& b, int64_t n) {
  RANGESYN_CHECK_EQ(a.rows(), b.rows());
  RANGESYN_CHECK_EQ(a.cols(), b.cols());
  RANGESYN_CHECK_LE(n, a.rows());
  double sse = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      const double d = a(i, j) - b(i, j);
      sse += d * d;
    }
  }
  return sse;
}

}  // namespace rangesyn
