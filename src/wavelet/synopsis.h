#ifndef RANGESYN_WAVELET_SYNOPSIS_H_
#define RANGESYN_WAVELET_SYNOPSIS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/estimator.h"
#include "core/result.h"

namespace rangesyn {

/// One retained wavelet coefficient.
struct WaveletCoefficient {
  int64_t index = 0;  // position in the Haar coefficient layout
  double value = 0.0;
};

/// Which vector the retained coefficients transform.
enum class WaveletDomain {
  /// Coefficients of the data vector A itself (padded with zeros to a
  /// power of two). Range queries sum the reconstruction over [a,b] —
  /// the approach of the prior wavelet literature the paper cites.
  kData,
  /// Coefficients of the prefix-sum vector P[0..n] (padded by repeating
  /// P[n]). Range queries are answered as P̂[b] - P̂[a-1]; the DC
  /// coefficient cancels in the difference, which is what makes the top-B
  /// selection provably range-optimal (paper Theorem 9; DESIGN.md §3.5).
  kPrefix,
};

/// Sparse Haar synopsis answering point and range queries in O(log n)
/// using the error-tree structure: only coefficients whose support
/// straddles a query endpoint contribute. Storage: 2 words per retained
/// coefficient (index + value).
class WaveletSynopsis : public RangeEstimator {
 public:
  /// `padded_size` is the power-of-two transform length; `domain_size` the
  /// true n of the underlying distribution. Coefficient indices must be
  /// unique and in [0, padded_size).
  static Result<WaveletSynopsis> Create(
      std::vector<WaveletCoefficient> coefficients, int64_t padded_size,
      int64_t domain_size, WaveletDomain domain, std::string name);

  RANGESYN_HOT_PATH double EstimateRange(int64_t a, int64_t b)
      const override;
  RANGESYN_HOT_PATH double EstimatePoint(int64_t i) const override;
  int64_t StorageWords() const override {
    return 2 * static_cast<int64_t>(coefficients_.size());
  }
  int64_t domain_size() const override { return n_; }
  std::string Name() const override { return name_; }

  WaveletDomain domain() const { return domain_; }
  int64_t padded_size() const { return padded_size_; }
  const std::vector<WaveletCoefficient>& coefficients() const {
    return coefficients_;
  }

  /// Reconstructed value of the transformed vector at 0-based position `t`
  /// (a value of A in kData domain, of P in kPrefix domain); O(log n).
  RANGESYN_HOT_PATH double ReconstructAt(int64_t t) const;

 private:
  WaveletSynopsis(std::vector<WaveletCoefficient> coefficients,
                  int64_t padded_size, int64_t domain_size,
                  WaveletDomain domain, std::string name);

  /// Sum of the reconstruction over 0-based positions [lo, hi]; O(log n)
  /// because only ancestors of lo and hi contribute nonzero range sums.
  RANGESYN_HOT_PATH double ReconstructRangeSum(int64_t lo, int64_t hi) const;

  std::vector<WaveletCoefficient> coefficients_;
  std::unordered_map<int64_t, double> by_index_;
  int64_t padded_size_;
  int64_t n_;
  WaveletDomain domain_;
  std::string name_;
};

}  // namespace rangesyn

#endif  // RANGESYN_WAVELET_SYNOPSIS_H_
