#include "wavelet/haar.h"

#include <cmath>

#include "core/logging.h"
#include "core/mathutil.h"
#include "core/threadpool.h"
#include "obs/obs.h"

namespace rangesyn {
namespace {

constexpr double kInvSqrt2 = 0.7071067811865475244;

/// Minimum butterfly-pair count before a transform level fans out to the
/// pool; below this the ParallelFor runs inline anyway and the constant
/// keeps tiny transforms (the common n=128 paper scale) zero-overhead.
/// Each pair writes two disjoint scratch slots, so the parallel level is
/// bit-identical to the serial one.
constexpr size_t kLevelGrain = 4096;

Status CheckPow2Size(size_t size) {
  if (size == 0 || !IsPowerOfTwo(static_cast<uint64_t>(size))) {
    return InvalidArgumentError("Haar: size must be a positive power of two");
  }
  return OkStatus();
}

double SumSquares(double m) { return m * (m + 1.0) * (2.0 * m + 1.0) / 6.0; }

}  // namespace

Result<std::vector<double>> HaarTransform(const std::vector<double>& v) {
  RANGESYN_RETURN_IF_ERROR(CheckPow2Size(v.size()));
  RANGESYN_OBS_SPAN("wavelet.transform");
  std::vector<double> out = v;
  std::vector<double> scratch(v.size());
  for (size_t len = v.size(); len > 1; len /= 2) {
    const size_t half = len / 2;
    ParallelFor(0, static_cast<int64_t>(half),
                static_cast<int64_t>(kLevelGrain),
                [&](int64_t lo, int64_t hi) {
                  for (size_t i = static_cast<size_t>(lo);
                       i < static_cast<size_t>(hi); ++i) {
                    scratch[i] =
                        (out[2 * i] + out[2 * i + 1]) * kInvSqrt2;  // avg
                    scratch[half + i] =
                        (out[2 * i] - out[2 * i + 1]) * kInvSqrt2;  // det
                  }
                });
    for (size_t i = 0; i < len; ++i) out[i] = scratch[i];
  }
  return out;
}

Result<std::vector<double>> HaarInverse(const std::vector<double>& coeffs) {
  RANGESYN_RETURN_IF_ERROR(CheckPow2Size(coeffs.size()));
  RANGESYN_OBS_SPAN("wavelet.inverse");
  std::vector<double> out = coeffs;
  std::vector<double> scratch(coeffs.size());
  for (size_t len = 2; len <= coeffs.size(); len *= 2) {
    const size_t half = len / 2;
    ParallelFor(0, static_cast<int64_t>(half),
                static_cast<int64_t>(kLevelGrain),
                [&](int64_t lo, int64_t hi) {
                  for (size_t i = static_cast<size_t>(lo);
                       i < static_cast<size_t>(hi); ++i) {
                    scratch[2 * i] = (out[i] + out[half + i]) * kInvSqrt2;
                    scratch[2 * i + 1] =
                        (out[i] - out[half + i]) * kInvSqrt2;
                  }
                });
    for (size_t i = 0; i < len; ++i) out[i] = scratch[i];
  }
  return out;
}

HaarBasis DescribeBasis(int64_t n, int64_t k) {
  RANGESYN_CHECK(IsPowerOfTwo(static_cast<uint64_t>(n)));
  RANGESYN_CHECK(k >= 0 && k < n);
  HaarBasis b;
  if (k == 0) {
    b.start = 0;
    b.length = n;
    b.height = 1.0 / std::sqrt(static_cast<double>(n));
    b.is_dc = true;
    return b;
  }
  const int level = FloorLog2(static_cast<uint64_t>(k));
  const int64_t offset = k - (int64_t{1} << level);
  b.length = n >> level;
  b.start = offset * b.length;
  b.height = 1.0 / std::sqrt(static_cast<double>(b.length));
  b.is_dc = false;
  return b;
}

double BasisValue(int64_t n, int64_t k, int64_t t) {
  const HaarBasis b = DescribeBasis(n, k);
  if (t < b.start || t >= b.start + b.length) return 0.0;
  if (b.is_dc) return b.height;
  return (t < b.start + b.length / 2) ? b.height : -b.height;
}

double BasisRangeSum(int64_t n, int64_t k, int64_t lo, int64_t hi) {
  RANGESYN_DCHECK(lo >= 0 && lo <= hi && hi < n);
  const HaarBasis b = DescribeBasis(n, k);
  const int64_t s_lo = std::max(lo, b.start);
  const int64_t s_hi = std::min(hi, b.start + b.length - 1);
  if (s_lo > s_hi) return 0.0;
  if (b.is_dc) return static_cast<double>(s_hi - s_lo + 1) * b.height;
  const int64_t mid = b.start + b.length / 2;  // first index of second half
  const int64_t plus = std::max<int64_t>(
      0, std::min(s_hi, mid - 1) - s_lo + 1);
  const int64_t minus = std::max<int64_t>(0, s_hi - std::max(s_lo, mid) + 1);
  return static_cast<double>(plus - minus) * b.height;
}

double BasisAllRangesWeight(int64_t n, int64_t k) {
  // With Psi[t] = sum of the basis over 1-based positions 1..t, the range
  // sum over (a,b) is Psi[b] - Psi[a-1], so the aggregate over all ranges
  // is (n+1) * sum Psi^2 - (sum Psi)^2 with t running over 0..n.
  const HaarBasis b = DescribeBasis(n, k);
  const double dn = static_cast<double>(n);
  if (b.is_dc) {
    const double sum_psi2 = SumSquares(dn) * b.height * b.height;
    const double sum_psi = dn * (dn + 1.0) / 2.0 * b.height;
    return (dn + 1.0) * sum_psi2 - sum_psi * sum_psi;
  }
  const double m = static_cast<double>(b.length) / 2.0;
  const double h2 = b.height * b.height;
  const double sum_psi = b.height * m * m;
  const double sum_psi2 = h2 * (2.0 * SumSquares(m) - m * m);
  return (dn + 1.0) * sum_psi2 - sum_psi * sum_psi;
}

std::vector<int64_t> AncestorIndices(int64_t n, int64_t t) {
  RANGESYN_CHECK(IsPowerOfTwo(static_cast<uint64_t>(n)));
  RANGESYN_CHECK(t >= 0 && t < n);
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(1 + FloorLog2(static_cast<uint64_t>(n))));
  ForEachAncestor(n, t, [&](int64_t k) { out.push_back(k); });
  return out;
}

Result<Matrix> Haar2D(const Matrix& m) {
  if (m.rows() != m.cols()) {
    return InvalidArgumentError("Haar2D: matrix must be square");
  }
  RANGESYN_RETURN_IF_ERROR(CheckPow2Size(static_cast<size_t>(m.rows())));
  const int64_t n = m.rows();
  Matrix out = m;
  std::vector<double> line(static_cast<size_t>(n));
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) line[static_cast<size_t>(c)] = out(r, c);
    RANGESYN_ASSIGN_OR_RETURN(std::vector<double> t, HaarTransform(line));
    for (int64_t c = 0; c < n; ++c) out(r, c) = t[static_cast<size_t>(c)];
  }
  for (int64_t c = 0; c < n; ++c) {
    for (int64_t r = 0; r < n; ++r) line[static_cast<size_t>(r)] = out(r, c);
    RANGESYN_ASSIGN_OR_RETURN(std::vector<double> t, HaarTransform(line));
    for (int64_t r = 0; r < n; ++r) out(r, c) = t[static_cast<size_t>(r)];
  }
  return out;
}

Result<Matrix> Haar2DInverse(const Matrix& m) {
  if (m.rows() != m.cols()) {
    return InvalidArgumentError("Haar2DInverse: matrix must be square");
  }
  RANGESYN_RETURN_IF_ERROR(CheckPow2Size(static_cast<size_t>(m.rows())));
  const int64_t n = m.rows();
  Matrix out = m;
  std::vector<double> line(static_cast<size_t>(n));
  for (int64_t c = 0; c < n; ++c) {
    for (int64_t r = 0; r < n; ++r) line[static_cast<size_t>(r)] = out(r, c);
    RANGESYN_ASSIGN_OR_RETURN(std::vector<double> t, HaarInverse(line));
    for (int64_t r = 0; r < n; ++r) out(r, c) = t[static_cast<size_t>(r)];
  }
  for (int64_t r = 0; r < n; ++r) {
    for (int64_t c = 0; c < n; ++c) line[static_cast<size_t>(c)] = out(r, c);
    RANGESYN_ASSIGN_OR_RETURN(std::vector<double> t, HaarInverse(line));
    for (int64_t c = 0; c < n; ++c) out(r, c) = t[static_cast<size_t>(c)];
  }
  return out;
}

}  // namespace rangesyn
