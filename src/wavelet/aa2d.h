#ifndef RANGESYN_WAVELET_AA2D_H_
#define RANGESYN_WAVELET_AA2D_H_

#include <cstdint>
#include <vector>

#include "core/result.h"
#include "linalg/matrix.h"

namespace rangesyn {

/// Validation tooling for the paper's Theorem 9 formulation: the virtual
/// matrix AA[i][j] = s[i+1, j+1] (0-based storage of 1-based ranges; zero
/// below the diagonal). The paper's optimal range-query wavelet synopsis
/// is the pointwise-optimal 2-D wavelet synopsis of AA; because the
/// pointwise SSE over AA's upper triangle *is* the all-ranges SSE, these
/// helpers let tests verify our prefix-sum-domain construction against the
/// virtual-AA view on small, materializable inputs.

/// Materializes AA (n x n; O(n^2) memory — tests and small n only).
Result<Matrix> MaterializeAA(const std::vector<int64_t>& data);

/// Pointwise SSE between the upper triangles (i <= j) of two matrices
/// whose shapes match: sum over i<=j of (a(i,j) - b(i,j))^2. Entries of
/// padded rows/columns beyond `n` are ignored.
double UpperTriangleSse(const Matrix& a, const Matrix& b, int64_t n);

/// Materializes AA zero-padded to the next power of two — input shape for
/// Haar2D.
Result<Matrix> MaterializeAAPadded(const std::vector<int64_t>& data);

}  // namespace rangesyn

#endif  // RANGESYN_WAVELET_AA2D_H_
