#include "wavelet/dynamic.h"

#include <algorithm>
#include <cmath>

#include "core/mathutil.h"
#include "core/strings.h"
#include "wavelet/haar.h"

namespace rangesyn {

Result<DynamicRangeSynopsisMaintainer> DynamicRangeSynopsisMaintainer::Create(
    const std::vector<int64_t>& data) {
  const int64_t n = static_cast<int64_t>(data.size());
  if (n < 1) return InvalidArgumentError("dynamic: empty data");
  for (int64_t v : data) {
    if (v < 0) return InvalidArgumentError("dynamic: negative count");
  }
  DynamicRangeSynopsisMaintainer out;
  out.n_ = n;
  out.padded_ = static_cast<int64_t>(
      NextPowerOfTwo(static_cast<uint64_t>(n) + 1));
  out.data_ = data;
  std::vector<double> p(static_cast<size_t>(out.padded_), 0.0);
  int64_t acc = 0;
  for (int64_t t = 1; t <= n; ++t) {
    acc += data[static_cast<size_t>(t - 1)];
    p[static_cast<size_t>(t)] = static_cast<double>(acc);
  }
  for (int64_t t = n + 1; t < out.padded_; ++t) {
    p[static_cast<size_t>(t)] = static_cast<double>(acc);
  }
  RANGESYN_ASSIGN_OR_RETURN(out.coeffs_, HaarTransform(p));
  return out;
}

Status DynamicRangeSynopsisMaintainer::ApplyUpdate(int64_t i,
                                                   int64_t delta) {
  if (i < 1 || i > n_) {
    return InvalidArgumentError(StrCat("dynamic: position ", i,
                                       " outside [1,", n_, "]"));
  }
  const int64_t updated = data_[static_cast<size_t>(i - 1)] + delta;
  if (updated < 0) {
    return FailedPreconditionError(
        StrCat("dynamic: update would make A[", i, "] = ", updated));
  }
  data_[static_cast<size_t>(i - 1)] = updated;
  // P gains `delta` on slots [i, padded-1] (the constant extension moves
  // with P[n]). That suffix-constant bump projects only onto the DC and
  // the ancestors of slot i.
  const double d = static_cast<double>(delta);
  for (int64_t k : AncestorIndices(padded_, i)) {
    coeffs_[static_cast<size_t>(k)] +=
        d * BasisRangeSum(padded_, k, i, padded_ - 1);
  }
  ++updates_;
  return OkStatus();
}

Result<WaveletSynopsis> DynamicRangeSynopsisMaintainer::Snapshot(
    int64_t budget) const {
  if (budget < 1) return InvalidArgumentError("dynamic: budget >= 1");
  // Top `budget` non-DC coefficients by |c|, ties toward lower index —
  // identical selection rule to BuildWaveRangeOpt.
  std::vector<int64_t> order;
  order.reserve(coeffs_.size() - 1);
  for (int64_t k = 1; k < padded_; ++k) order.push_back(k);
  const size_t keep =
      std::min<size_t>(static_cast<size_t>(budget), order.size());
  std::partial_sort(order.begin(), order.begin() + keep, order.end(),
                    [this](int64_t x, int64_t y) {
                      const double sx =
                          std::fabs(coeffs_[static_cast<size_t>(x)]);
                      const double sy =
                          std::fabs(coeffs_[static_cast<size_t>(y)]);
                      if (sx != sy) return sx > sy;
                      return x < y;
                    });
  std::vector<WaveletCoefficient> kept;
  kept.reserve(keep);
  for (size_t i = 0; i < keep; ++i) {
    kept.push_back({order[i], coeffs_[static_cast<size_t>(order[i])]});
  }
  std::sort(kept.begin(), kept.end(),
            [](const WaveletCoefficient& a, const WaveletCoefficient& b) {
              return a.index < b.index;
            });
  return WaveletSynopsis::Create(std::move(kept), padded_, n_,
                                 WaveletDomain::kPrefix, "WAVE-RANGE-OPT");
}

}  // namespace rangesyn
