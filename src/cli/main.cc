// The rangesyn command-line tool. All logic lives in cli/commands.{h,cc}
// so it is unit-testable; this file only adapts argv and exit codes.

#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.h"
#include "obs/flight.h"

int main(int argc, char** argv) {
  // Fatal signals and CHECK failures dump the flight recorder (when a
  // dump dir is configured) before the process dies.
  rangesyn::obs::InstallCrashHandlers();
  std::vector<std::string> args(argv + 1, argv + argc);
  rangesyn::Result<std::string> result = rangesyn::RunCliCommand(args);
  if (!result.ok()) {
    // --help inside a subcommand surfaces as FailedPrecondition after the
    // usage text has been printed; treat it as success.
    if (result.status().code() ==
        rangesyn::StatusCode::kFailedPrecondition &&
        result.status().message() == "--help requested") {
      return 0;
    }
    std::cerr << "rangesyn: " << result.status() << "\n";
    return 1;
  }
  std::cout << result.value();
  return 0;
}
