#include "cli/commands.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <sstream>
#include <thread>

#include "core/failpoint.h"
#include "core/flags.h"
#include "core/fs.h"
#include "core/random.h"
#include "core/strings.h"
#include "core/threadpool.h"
#include "data/distribution.h"
#include "data/io.h"
#include "data/rounding.h"
#include "engine/catalog.h"
#include "engine/factory.h"
#include "engine/serialize.h"
#include "qpath/flat_file.h"
#include "qpath/flat_synopsis.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "obs/obs.h"
#include "serve/loadgen.h"
#include "serve/server.h"

namespace rangesyn {
namespace {

/// Parses a FlagSet from string args (argv-style, without argv[0]).
Status ParseArgs(FlagSet* flags, const std::vector<std::string>& args) {
  std::vector<char*> argv;
  std::string program = "rangesyn";
  argv.push_back(program.data());
  std::vector<std::string> storage(args);
  for (std::string& a : storage) argv.push_back(a.data());
  return flags->Parse(static_cast<int>(argv.size()), argv.data());
}

Result<std::string> CmdGenerate(const std::vector<std::string>& args) {
  FlagSet flags("rangesyn generate", "write a synthetic distribution CSV");
  flags.DefineString("dist", "zipf", "distribution family");
  flags.DefineInt64("n", 127, "domain size");
  flags.DefineDouble("volume", 2000.0, "total record count");
  flags.DefineInt64("seed", 20010521, "generator seed");
  flags.DefineString("out", "data.csv", "output path");
  RANGESYN_RETURN_IF_ERROR(ParseArgs(&flags, args));
  Rng rng(static_cast<uint64_t>(flags.GetInt64("seed")));
  RANGESYN_ASSIGN_OR_RETURN(
      std::vector<double> floats,
      MakeNamedDistribution(flags.GetString("dist"), flags.GetInt64("n"),
                            flags.GetDouble("volume"), &rng));
  RANGESYN_ASSIGN_OR_RETURN(
      std::vector<int64_t> data,
      RandomRound(floats, RandomRoundingMode::kHalf, &rng));
  RANGESYN_RETURN_IF_ERROR(
      SaveDistributionCsv(data, flags.GetString("out")));
  int64_t total = 0;
  for (int64_t v : data) total += v;
  return StrCat("wrote ", data.size(), " counts (", total, " records) to ",
                flags.GetString("out"), "\n");
}

Result<std::string> CmdBuild(const std::vector<std::string>& args) {
  FlagSet flags("rangesyn build", "build and persist a synopsis");
  flags.DefineString("data", "data.csv", "input distribution CSV");
  flags.DefineString("method", "sap1", "synopsis method");
  flags.DefineInt64("budget", 24, "storage budget (words)");
  flags.DefineInt64("granularity", 2, "OPT-A-ROUNDED granularity");
  flags.DefineString("out", "synopsis.rsn", "output path");
  flags.DefineInt64("deadline-ms", 0,
                    "build deadline in milliseconds (0 = unlimited); on "
                    "expiry a cheaper fallback construction is built "
                    "instead of failing");
  RANGESYN_RETURN_IF_ERROR(ParseArgs(&flags, args));
  RANGESYN_ASSIGN_OR_RETURN(std::vector<int64_t> data,
                            LoadDistributionCsv(flags.GetString("data")));
  SynopsisSpec spec;
  spec.method = flags.GetString("method");
  spec.budget_words = flags.GetInt64("budget");
  spec.granularity = flags.GetInt64("granularity");
  BuildOptions build_options;
  const int64_t deadline_ms = flags.GetInt64("deadline-ms");
  if (deadline_ms < 0) {
    return InvalidArgumentError("--deadline-ms must be >= 0");
  }
  if (deadline_ms > 0) {
    build_options.deadline =
        Deadline::After(static_cast<double>(deadline_ms) / 1000.0);
  }
  RANGESYN_ASSIGN_OR_RETURN(BuildOutcome outcome,
                            BuildSynopsisWithOptions(spec, data,
                                                     build_options));
  const RangeEstimatorPtr& est = outcome.estimator;
  RANGESYN_RETURN_IF_ERROR(
      SaveSynopsisToFile(*est, flags.GetString("out")));
  // Total-mass self-check: one real query through the freshly built
  // synopsis, so even a bare `build` run exercises the query path.
  const double total = est->EstimateRange(1, est->domain_size());
  RANGESYN_OBS_COUNTER_INC("engine.query.count");
  std::string degraded_note;
  if (outcome.degraded) {
    degraded_note =
        StrCat("note: degraded '", outcome.degraded_from, "' -> '",
               outcome.built_method, "' (", outcome.fallback_reason, ")\n");
  }
  return StrCat(degraded_note, "built ", est->Name(), " (",
                est->StorageWords(), " words over domain ",
                est->domain_size(), ") -> ", flags.GetString("out"),
                "\nself-check: s[1,", est->domain_size(), "] ~= ",
                FormatG(total, 10), "\n");
}

Result<std::string> CmdInspect(const std::vector<std::string>& args) {
  FlagSet flags("rangesyn inspect", "describe a persisted synopsis");
  flags.DefineString("synopsis", "synopsis.rsn", "synopsis path");
  RANGESYN_RETURN_IF_ERROR(ParseArgs(&flags, args));
  RANGESYN_ASSIGN_OR_RETURN(RangeEstimatorPtr est,
                            LoadSynopsisFromFile(flags.GetString("synopsis")));
  return StrCat("name:    ", est->Name(), "\nstorage: ",
                est->StorageWords(), " words\ndomain:  1..",
                est->domain_size(), "\n");
}

/// Resolves the estimator a query command should serve from: the mmap'd
/// flat file when --flat-file is set, the flat compilation of the loaded
/// synopsis under --flat, or the legacy estimator otherwise. The flat
/// paths answer bit-identically to the legacy one, so the choice is purely
/// about serving cost.
Result<RangeEstimatorPtr> LoadQueryEstimator(const FlagSet& flags) {
  const std::string flat_file = flags.GetString("flat-file");
  if (!flat_file.empty()) {
    RANGESYN_ASSIGN_OR_RETURN(std::shared_ptr<const FlatSynopsis> flat,
                              OpenFlatMapped(flat_file));
    return RangeEstimatorPtr(
      std::make_unique<FlatRangeEstimator>(std::move(flat)));
  }
  RANGESYN_ASSIGN_OR_RETURN(RangeEstimatorPtr est,
                            LoadSynopsisFromFile(flags.GetString("synopsis")));
  if (!flags.GetBool("flat")) return est;
  RANGESYN_ASSIGN_OR_RETURN(std::shared_ptr<const FlatSynopsis> flat,
                            FlatSynopsis::Compile(*est));
  return RangeEstimatorPtr(
      std::make_unique<FlatRangeEstimator>(std::move(flat)));
}

void DefineFlatFlags(FlagSet* flags) {
  flags->DefineBool("flat", false,
                    "serve through the flat (structure-of-arrays) query "
                    "path; answers are bit-identical to the legacy path");
  flags->DefineString("flat-file", "",
                      "RSF1 flat synopsis (see compile-flat); mmap'd and "
                      "served zero-copy, overrides --synopsis");
}

Result<std::string> CmdEstimate(const std::vector<std::string>& args) {
  FlagSet flags("rangesyn estimate", "answer one range query");
  flags.DefineString("synopsis", "synopsis.rsn", "synopsis path");
  flags.DefineInt64("a", 1, "range start (1-based, inclusive)");
  flags.DefineInt64("b", 1, "range end (inclusive)");
  DefineFlatFlags(&flags);
  RANGESYN_RETURN_IF_ERROR(ParseArgs(&flags, args));
  RANGESYN_ASSIGN_OR_RETURN(RangeEstimatorPtr est,
                            LoadQueryEstimator(flags));
  const int64_t a = flags.GetInt64("a");
  const int64_t b = flags.GetInt64("b");
  if (a < 1 || a > b || b > est->domain_size()) {
    return InvalidArgumentError(
        StrCat("bad range [", a, ",", b, "] for domain 1..",
               est->domain_size()));
  }
  return StrCat("s[", a, ",", b, "] ~= ",
                FormatG(est->EstimateRange(a, b), 10), "\n");
}

Result<std::string> CmdCompileFlat(const std::vector<std::string>& args) {
  FlagSet flags("rangesyn compile-flat",
                "compile a synopsis into an mmap-able RSF1 flat file");
  flags.DefineString("synopsis", "synopsis.rsn", "input synopsis path");
  flags.DefineString("out", "synopsis.rsf", "output flat file path");
  RANGESYN_RETURN_IF_ERROR(ParseArgs(&flags, args));
  RANGESYN_ASSIGN_OR_RETURN(RangeEstimatorPtr est,
                            LoadSynopsisFromFile(flags.GetString("synopsis")));
  RANGESYN_ASSIGN_OR_RETURN(std::shared_ptr<const FlatSynopsis> flat,
                            FlatSynopsis::Compile(*est));
  RANGESYN_RETURN_IF_ERROR(
      SaveFlatSynopsis(*flat, flags.GetString("out")));
  return StrCat("compiled ", est->Name(), " -> ", flat->Name(), " (",
                flat->i64s().size(), " i64 + ", flat->f64s().size(),
                " f64 words) -> ", flags.GetString("out"), "\n");
}

Result<std::string> CmdEvaluate(const std::vector<std::string>& args) {
  FlagSet flags("rangesyn evaluate",
                "score a synopsis against exact answers");
  flags.DefineString("synopsis", "synopsis.rsn", "synopsis path");
  flags.DefineString("data", "data.csv", "ground-truth distribution CSV");
  flags.DefineString("workload", "",
                     "optional query-log CSV (default: all ranges)");
  DefineFlatFlags(&flags);
  RANGESYN_RETURN_IF_ERROR(ParseArgs(&flags, args));
  RANGESYN_ASSIGN_OR_RETURN(RangeEstimatorPtr est,
                            LoadQueryEstimator(flags));
  RANGESYN_ASSIGN_OR_RETURN(std::vector<int64_t> data,
                            LoadDistributionCsv(flags.GetString("data")));
  ErrorStats stats;
  if (flags.GetString("workload").empty()) {
    RANGESYN_ASSIGN_OR_RETURN(stats, AllRangesStats(data, *est));
  } else {
    RANGESYN_ASSIGN_OR_RETURN(std::vector<RangeQuery> queries,
                              LoadWorkloadCsv(flags.GetString("workload")));
    RANGESYN_ASSIGN_OR_RETURN(stats,
                              EvaluateOnWorkload(data, *est, queries));
  }
  return StrCat("queries:  ", stats.count, "\nSSE:      ",
                FormatG(stats.sse, 10), "\nRMSE:     ",
                FormatG(stats.rmse, 6), "\nmax|err|: ",
                FormatG(stats.max_abs, 6), "\n");
}

Result<std::string> CmdSweep(const std::vector<std::string>& args) {
  FlagSet flags("rangesyn sweep", "Figure-1 style storage sweep");
  flags.DefineString("data", "data.csv", "input distribution CSV");
  flags.DefineString("methods", "naive,pointopt,a0,sap0,sap1",
                     "comma-separated methods");
  flags.DefineString("budgets", "8,16,32,64", "comma-separated budgets");
  flags.DefineBool("csv", false, "emit CSV");
  RANGESYN_RETURN_IF_ERROR(ParseArgs(&flags, args));
  RANGESYN_ASSIGN_OR_RETURN(std::vector<int64_t> data,
                            LoadDistributionCsv(flags.GetString("data")));
  SweepOptions sweep;
  sweep.methods = StrSplit(flags.GetString("methods"), ',');
  for (const std::string& b : StrSplit(flags.GetString("budgets"), ',')) {
    int64_t v = 0;
    if (!ParseInt64(b, &v)) {
      return InvalidArgumentError(StrCat("bad budget '", b, "'"));
    }
    sweep.budgets_words.push_back(v);
  }
  RANGESYN_ASSIGN_OR_RETURN(std::vector<ExperimentRow> rows,
                            RunStorageSweep(data, sweep));
  std::ostringstream os;
  if (flags.GetBool("csv")) {
    PrintSweepCsv(rows, os);
  } else {
    PrintSweep(rows, os);
  }
  return os.str();
}

Result<std::string> CmdStats(const std::vector<std::string>& args) {
  FlagSet flags("rangesyn stats",
                "run an instrumented pipeline and report obs metrics");
  flags.DefineString("data", "",
                     "input distribution CSV (default: synthetic Zipf)");
  flags.DefineString("method", "sap1", "synopsis method");
  flags.DefineInt64("budget", 24, "storage budget (words)");
  flags.DefineBool("json", false, "emit the metrics registry as JSON");
  flags.DefineString("format", "",
                     "output format: text (default), json, or prometheus "
                     "(text exposition for a textfile collector)");
  RANGESYN_RETURN_IF_ERROR(ParseArgs(&flags, args));
  std::string format = flags.GetString("format");
  if (format.empty()) format = flags.GetBool("json") ? "json" : "text";
  if (format != "text" && format != "json" && format != "prometheus") {
    return InvalidArgumentError(StrCat(
        "--format: expected text, json, or prometheus; got '", format, "'"));
  }
  std::vector<int64_t> data;
  if (flags.GetString("data").empty()) {
    Rng rng(20010521);
    RANGESYN_ASSIGN_OR_RETURN(
        std::vector<double> floats,
        MakeNamedDistribution("zipf", 127, 2000.0, &rng));
    RANGESYN_ASSIGN_OR_RETURN(
        data, RandomRound(floats, RandomRoundingMode::kHalf, &rng));
  } else {
    RANGESYN_ASSIGN_OR_RETURN(data,
                              LoadDistributionCsv(flags.GetString("data")));
  }
  SynopsisSpec spec;
  spec.method = flags.GetString("method");
  spec.budget_words = flags.GetInt64("budget");
  // Build -> evaluate -> serialize, so the dump below covers every
  // instrumented phase of the pipeline.
  RANGESYN_ASSIGN_OR_RETURN(RangeEstimatorPtr est, BuildSynopsis(spec, data));
  RANGESYN_ASSIGN_OR_RETURN(ErrorStats err, AllRangesStats(data, *est));
  RANGESYN_ASSIGN_OR_RETURN(const std::string bytes, SerializeSynopsis(*est));
  // Eagerly register the serving metrics (serve.request.*, serve.queue.*,
  // ...) so scrapers see the full serving series — at zero — even from a
  // process that never handled a request.
  (void)serve::GetServingMetrics();
  const obs::RegistrySnapshot snapshot = obs::Registry::Get().Snapshot();
  if (format == "json") {
    std::ostringstream os;
    obs::WriteStatsJson(snapshot, os);
    return os.str();
  }
  if (format == "prometheus") return obs::FormatStatsPrometheus(snapshot);
  return StrCat("pipeline: ", est->Name(), " budget=",
                flags.GetInt64("budget"), " n=", data.size(), " queries=",
                err.count, " sse=", FormatG(err.sse, 6), " bytes=",
                bytes.size(), "\n\n", obs::FormatStatsText(snapshot));
}

/// Catalog-source flags shared by `serve` and `loadgen`: either a
/// persisted catalog file or one distribution CSV built under an explicit
/// key. Both tools build from the same flags, and synopsis construction
/// is deterministic, so a loadgen pointed at the same source holds a
/// bit-exact oracle for the daemon's answers.
void DefineCatalogSourceFlags(FlagSet* flags) {
  flags->DefineString("catalog", "",
                      "persisted catalog file (engine/catalog Save format)");
  flags->DefineString("data", "",
                      "distribution CSV to build a one-entry catalog from "
                      "(alternative to --catalog)");
  flags->DefineString("key", "default",
                      "synopsis key for the --data entry");
  flags->DefineString("method", "sap1", "synopsis method for --data");
  flags->DefineInt64("budget", 24, "storage budget (words) for --data");
}

Result<SynopsisCatalog> LoadServeCatalog(const FlagSet& flags) {
  const std::string catalog_path = flags.GetString("catalog");
  const std::string data_path = flags.GetString("data");
  if (!catalog_path.empty() && !data_path.empty()) {
    return InvalidArgumentError("pass --catalog or --data, not both");
  }
  if (!catalog_path.empty()) {
    SynopsisCatalog::LoadReport report;
    RANGESYN_ASSIGN_OR_RETURN(
        SynopsisCatalog catalog,
        SynopsisCatalog::LoadFromFileWithReport(catalog_path, &report));
    if (!report.quarantined.empty()) {
      RANGESYN_LOG_EVENT(Warning, "serve.catalog.quarantined")
          .Arg("file", catalog_path)
          .Arg("entries",
               static_cast<int64_t>(report.quarantined.size()));
    }
    return catalog;
  }
  if (data_path.empty()) {
    return InvalidArgumentError("pass --catalog=FILE or --data=CSV");
  }
  RANGESYN_ASSIGN_OR_RETURN(std::vector<int64_t> counts,
                            LoadDistributionCsv(data_path));
  AttributeDistribution distribution;
  distribution.domain_lo = 1;
  distribution.counts = std::move(counts);
  SynopsisSpec spec;
  spec.method = flags.GetString("method");
  spec.budget_words = flags.GetInt64("budget");
  SynopsisCatalog catalog;
  RANGESYN_RETURN_IF_ERROR(catalog.RegisterDistribution(
      flags.GetString("key"), std::move(distribution), spec));
  return catalog;
}

/// Set by the SIGTERM/SIGINT handler while `rangesyn serve` runs. A
/// lock-free store is the only thing an async-signal-safe handler may do;
/// the serve loop polls it and performs the actual drain.
std::atomic<bool> g_serve_drain_requested{false};

void HandleServeSignal(int /*signum*/) {
  g_serve_drain_requested.store(true, std::memory_order_release);
}

Result<std::string> CmdServe(const std::vector<std::string>& args) {
  FlagSet flags("rangesyn serve",
                "serve synopsis estimates over RSP1 until SIGTERM");
  DefineCatalogSourceFlags(&flags);
  flags.DefineString("host", "127.0.0.1", "address to bind");
  flags.DefineInt64("port", 0, "TCP port (0 = ephemeral)");
  flags.DefineString("port-file", "",
                     "write the bound port to this file once listening");
  flags.DefineInt64("max-conns", 64,
                    "connection cap (excess get a typed OVERLOADED)");
  flags.DefineInt64("queue-limit", 256,
                    "admitted-request cap (excess are shed, typed)");
  flags.DefineInt64("eval-chunk", 256,
                    "queries evaluated between deadline polls");
  flags.DefineInt64("drain-after-ms", 0,
                    "drain this long after start (0 = on signal only; "
                    "for tests and scripted runs)");
  flags.DefineDouble("grace-s", 30.0, "drain grace window, seconds");
  RANGESYN_RETURN_IF_ERROR(ParseArgs(&flags, args));
  RANGESYN_ASSIGN_OR_RETURN(SynopsisCatalog catalog,
                            LoadServeCatalog(flags));
  serve::ServerOptions options;
  options.host = flags.GetString("host");
  options.port = static_cast<uint16_t>(flags.GetInt64("port"));
  options.max_connections = static_cast<int>(flags.GetInt64("max-conns"));
  options.queue_limit = static_cast<int>(flags.GetInt64("queue-limit"));
  options.eval_chunk = static_cast<int>(flags.GetInt64("eval-chunk"));
  RANGESYN_ASSIGN_OR_RETURN(
      std::unique_ptr<serve::Server> server,
      serve::Server::Create(std::move(catalog), options));
  RANGESYN_RETURN_IF_ERROR(server->Start());
  if (!flags.GetString("port-file").empty()) {
    RANGESYN_RETURN_IF_ERROR(AtomicWriteFile(
        flags.GetString("port-file"), StrCat(server->port(), "\n")));
  }
  g_serve_drain_requested.store(false, std::memory_order_release);
  auto previous_term = std::signal(SIGTERM, HandleServeSignal);
  auto previous_int = std::signal(SIGINT, HandleServeSignal);
  const int64_t drain_after_ms = flags.GetInt64("drain-after-ms");
  const auto started = std::chrono::steady_clock::now();
  while (!g_serve_drain_requested.load(std::memory_order_acquire)) {
    if (drain_after_ms > 0 &&
        std::chrono::steady_clock::now() - started >=
            std::chrono::milliseconds(drain_after_ms)) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const Status drained = server->DrainAndWait(flags.GetDouble("grace-s"));
  (void)std::signal(SIGTERM, previous_term);
  (void)std::signal(SIGINT, previous_int);
  const std::string summary = server->SummaryLine();
  RANGESYN_RETURN_IF_ERROR(drained);
  return StrCat("drained cleanly\n", summary, "\n");
}

Result<std::string> CmdLoadgen(const std::vector<std::string>& args) {
  FlagSet flags("rangesyn loadgen",
                "generate deterministic traffic against a serve daemon");
  DefineCatalogSourceFlags(&flags);
  flags.DefineString("host", "127.0.0.1", "daemon address");
  flags.DefineInt64("port", 0, "daemon port");
  flags.DefineString("port-file", "",
                     "read the port from this file (written by serve "
                     "--port-file; polled until it appears)");
  flags.DefineDouble("port-wait-s", 10.0,
                     "how long to wait for --port-file to appear");
  flags.DefineInt64("requests", 1000, "total query requests");
  flags.DefineInt64("concurrency", 4, "worker connections");
  flags.DefineInt64("batch", 8, "ranges per request");
  flags.DefineInt64("deadline-ms", 1000,
                    "per-request deadline and retry budget (0 = none)");
  flags.DefineInt64("max-attempts", 3, "attempts per request");
  flags.DefineInt64("seed", 1, "traffic seed (replayable)");
  flags.DefineBool("verify", true,
                   "check responses bit-exactly against a local build");
  flags.DefineBool("json", false, "emit the report as JSON");
  RANGESYN_RETURN_IF_ERROR(ParseArgs(&flags, args));
  RANGESYN_ASSIGN_OR_RETURN(SynopsisCatalog catalog,
                            LoadServeCatalog(flags));
  std::unordered_map<std::string, std::shared_ptr<const FlatSynopsis>>
      views;
  std::vector<std::string> keys;
  for (const SynopsisCatalog::EntryInfo& info : catalog.ListEntries()) {
    RANGESYN_ASSIGN_OR_RETURN(
        std::shared_ptr<const FlatSynopsis> view,
        catalog.FlatView(info.key));
    views.emplace(info.key, std::move(view));
    keys.push_back(info.key);
  }
  serve::LoadgenOptions options;
  options.client.host = flags.GetString("host");
  int64_t port = flags.GetInt64("port");
  if (!flags.GetString("port-file").empty()) {
    const auto wait_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(flags.GetDouble("port-wait-s")));
    for (;;) {
      Result<std::string> text =
          ReadFileToString(flags.GetString("port-file"));
      if (text.ok() && ParseInt64(StripWhitespace(*text), &port)) break;
      if (std::chrono::steady_clock::now() >= wait_deadline) {
        return DeadlineExceededError(
            StrCat("loadgen: port file '", flags.GetString("port-file"),
                   "' did not appear within ",
                   flags.GetDouble("port-wait-s"), "s"));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  if (port <= 0 || port > 65535) {
    return InvalidArgumentError(
        StrCat("loadgen: invalid port ", port,
               " (pass --port or --port-file)"));
  }
  options.client.port = static_cast<uint16_t>(port);
  options.client.max_attempts =
      static_cast<int>(flags.GetInt64("max-attempts"));
  options.keys = std::move(keys);
  options.requests = flags.GetInt64("requests");
  options.concurrency = static_cast<int>(flags.GetInt64("concurrency"));
  options.batch = static_cast<int>(flags.GetInt64("batch"));
  options.deadline_ms =
      static_cast<uint32_t>(flags.GetInt64("deadline-ms"));
  options.seed = static_cast<uint64_t>(flags.GetInt64("seed"));
  options.verify = flags.GetBool("verify");
  RANGESYN_ASSIGN_OR_RETURN(serve::LoadgenReport report,
                            serve::RunLoadgen(options, views));
  if (report.mismatched > 0) {
    return InternalError(
        StrCat("loadgen: ", report.mismatched,
               " responses were not bit-identical to the local oracle\n",
               report.ToText()));
  }
  return flags.GetBool("json") ? StrCat(report.ToJson(), "\n")
                               : report.ToText();
}

}  // namespace

std::string CliUsage() {
  return
      "rangesyn — summary statistics for range aggregates (PODS 2001)\n"
      "\n"
      "usage: rangesyn <command> [--flags]\n"
      "\n"
      "commands:\n"
      "  generate   write a synthetic attribute-value distribution CSV\n"
      "  build      build a synopsis from a CSV and persist it\n"
      "  inspect    describe a persisted synopsis\n"
      "  estimate   answer one range query from a synopsis\n"
      "  evaluate   score a synopsis against exact answers\n"
      "  compile-flat  compile a synopsis into an mmap-able flat file\n"
      "  sweep      run a Figure-1 style storage sweep\n"
      "  stats      run an instrumented pipeline and report obs metrics\n"
      "  serve      serve synopsis estimates over RSP1 until SIGTERM\n"
      "  loadgen    generate deterministic traffic against a serve "
      "daemon\n"
      "  help       show this text\n"
      "\n"
      "global flags (any command):\n"
      "  --trace-out=FILE   write a Chrome trace (chrome://tracing) of the "
      "run\n"
      "  --stats-json=FILE  dump the metrics registry as JSON after the "
      "run\n"
      "  --threads=N        worker threads for parallel construction "
      "(0 = all cores, 1 = serial; default: RANGESYN_THREADS env or 0). "
      "Results are bit-identical at every thread count.\n"
      "  --failpoints=SPEC  activate fault-injection sites (debugging/"
      "testing; e.g. 'io.*=once;alloc.interval_dp=prob:0.1:42'). "
      "Default: RANGESYN_FAILPOINTS env. Requires a build with "
      "RANGESYN_FAILPOINTS=ON (the default).\n"
      "  --log-level=LEVEL  minimum severity emitted to the structured "
      "log (debug|info|warning|error; default info)\n"
      "  --log-json         emit structured log events as JSON lines "
      "instead of text\n"
      "  --flight-dir=DIR   write flight-recorder postmortem dumps into "
      "DIR on crash/degradation/quarantine (default: RANGESYN_FLIGHT_DIR "
      "env; unset disables dumps)\n"
      "\n"
      "run 'rangesyn <command> --help' for per-command flags.\n";
}

Result<std::string> RunCliCommand(const std::vector<std::string>& args) {
  // Global observability flags work on every command; strip them here so
  // the per-command FlagSets stay unaware of them.
  std::string trace_out;
  std::string stats_json;
  std::vector<std::string> kept;
  kept.reserve(args.size());
  for (const std::string& a : args) {
    if (a.rfind("--trace-out=", 0) == 0) {
      trace_out = a.substr(sizeof("--trace-out=") - 1);
    } else if (a.rfind("--stats-json=", 0) == 0) {
      stats_json = a.substr(sizeof("--stats-json=") - 1);
    } else if (a.rfind("--threads=", 0) == 0) {
      const std::string value = a.substr(sizeof("--threads=") - 1);
      int64_t threads = 0;
      if (!ParseInt64(value, &threads) || threads < 0) {
        return InvalidArgumentError(
            StrCat("--threads: expected a non-negative integer, got '",
                   value, "'"));
      }
      SetGlobalThreads(static_cast<int>(threads));
    } else if (a.rfind("--failpoints=", 0) == 0) {
      const std::string spec = a.substr(sizeof("--failpoints=") - 1);
      if (!failpoint::kCompiledIn) {
        return FailedPreconditionError(
            "--failpoints: this binary was built with "
            "RANGESYN_FAILPOINTS=OFF");
      }
      RANGESYN_RETURN_IF_ERROR(failpoint::Configure(spec));
    } else if (a.rfind("--log-level=", 0) == 0) {
      const std::string value = a.substr(sizeof("--log-level=") - 1);
      LogSeverity level;
      if (!obs::ParseLogLevel(value, &level)) {
        return InvalidArgumentError(
            StrCat("--log-level: expected debug, info, warning, or error; "
                   "got '", value, "'"));
      }
      SetMinLogSeverity(level);
    } else if (a == "--log-json") {
      obs::LogSink::Get().SetJson(true);
    } else if (a.rfind("--flight-dir=", 0) == 0) {
      obs::FlightRecorder::Get().SetDumpDir(
          a.substr(sizeof("--flight-dir=") - 1));
    } else {
      kept.push_back(a);
    }
  }
  if (kept.empty() || kept[0] == "help" || kept[0] == "--help") {
    return CliUsage();
  }
  const std::string& command = kept[0];
  const std::vector<std::string> rest(kept.begin() + 1, kept.end());
  if (!trace_out.empty()) obs::Tracer::Get().Start();
  Result<std::string> result = [&]() -> Result<std::string> {
    if (command == "generate") return CmdGenerate(rest);
    if (command == "build") return CmdBuild(rest);
    if (command == "inspect") return CmdInspect(rest);
    if (command == "estimate") return CmdEstimate(rest);
    if (command == "evaluate") return CmdEvaluate(rest);
    if (command == "compile-flat") return CmdCompileFlat(rest);
    if (command == "sweep") return CmdSweep(rest);
    if (command == "stats") return CmdStats(rest);
    if (command == "serve") return CmdServe(rest);
    if (command == "loadgen") return CmdLoadgen(rest);
    return InvalidArgumentError(
        StrCat("unknown command '", command, "'\n\n", CliUsage()));
  }();
  // Export even when the command failed (a partial trace is still useful
  // for debugging), but let the command's own error win.
  std::string notes;
  if (!trace_out.empty()) {
    obs::Tracer::Get().Stop();
    if (Status s = obs::WriteTraceJsonFile(trace_out); !s.ok()) {
      if (result.ok()) return s;
    } else {
      notes += StrCat("wrote trace -> ", trace_out, "\n");
    }
  }
  if (!stats_json.empty()) {
    if (Status s = obs::WriteStatsJsonFile(obs::Registry::Get().Snapshot(),
                                           stats_json);
        !s.ok()) {
      if (result.ok()) return s;
    } else {
      notes += StrCat("wrote stats -> ", stats_json, "\n");
    }
  }
  if (!result.ok()) return result;
  return result.value() + notes;
}

}  // namespace rangesyn
