#ifndef RANGESYN_CLI_COMMANDS_H_
#define RANGESYN_CLI_COMMANDS_H_

#include <string>
#include <vector>

#include "core/result.h"

namespace rangesyn {

/// The rangesyn command-line tool, as a library so the dispatcher is unit
/// testable. Each command takes argv-style arguments (without the program
/// name) and returns its human-readable output.
///
/// Commands:
///   generate  --dist=zipf --n=127 --volume=2000 --seed=7 --out=data.csv
///   build     --data=data.csv --method=sap1 --budget=24 --out=syn.rsn
///   inspect   --synopsis=syn.rsn
///   estimate  --synopsis=syn.rsn --a=3 --b=40 [--flat|--flat-file=f.rsf]
///   evaluate  --synopsis=syn.rsn --data=data.csv [--workload=log.csv]
///             [--flat|--flat-file=f.rsf]
///   compile-flat  --synopsis=syn.rsn --out=syn.rsf
///   sweep     --data=data.csv --methods=a0,sap1 --budgets=8,16,32 [--csv]
///   serve     --data=data.csv|--catalog=cat.rsc [--port=0 --port-file=p]
///   loadgen   --data=data.csv|--catalog=cat.rsc --port-file=p
///             [--requests=1000 --concurrency=4 --batch=8 --json]
///
/// `RunCliCommand({"build", "--data=...", ...})` dispatches on the first
/// element; unknown commands and `help` return the usage text.
Result<std::string> RunCliCommand(const std::vector<std::string>& args);

/// Top-level usage text.
std::string CliUsage();

}  // namespace rangesyn

#endif  // RANGESYN_CLI_COMMANDS_H_
