#ifndef RANGESYN_SERVE_PROTOCOL_H_
#define RANGESYN_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/result.h"
#include "qpath/flat_synopsis.h"

namespace rangesyn::serve {

/// RSP1: the rangesyn serving protocol (DESIGN.md §12.2). A compact
/// length-prefixed binary framing over a byte stream, designed so that a
/// flaky transport can corrupt or truncate a frame but never smuggle a
/// damaged payload past the reader:
///
///   offset  size  field
///        0     4  magic "RSP1"
///        4     1  version (kWireVersion)
///        5     1  message type (MsgType)
///        6     4  payload size, little-endian u32 (<= kMaxPayloadBytes)
///       10     n  payload (per-type layout below)
///     10+n     4  CRC32C over bytes [0, 10+n), little-endian
///
/// Payload layouts (ByteWriter little-endian primitives):
///   kPing / kPong        u64 request_id
///   kQuery               u64 request_id · u32 deadline_ms (0 = none) ·
///                        string key · u32 count · count × (i64 a, i64 b)
///   kQueryOk             u64 request_id · u32 count · count × f64
///   kError               u64 request_id · u8 code (WireError) ·
///                        string message
///
/// A request is answered by exactly one kQueryOk / kPong / kError frame
/// carrying the same request_id; the server never drops a parsed request
/// silently (overload, expiry, and shutdown all produce typed kError
/// frames). Batched submission is first-class: one kQuery frame carries
/// any number of ranges and is answered by one frame.
inline constexpr uint32_t kWireMagic = 0x31505352;  // "RSP1" little-endian
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 10;
inline constexpr size_t kFrameTrailerBytes = 4;
/// Upper bound on one payload — caps a malicious or corrupted size field
/// before the reader allocates (16 MiB ≈ one million batched queries).
inline constexpr uint32_t kMaxPayloadBytes = 16u << 20;

enum class MsgType : uint8_t {
  kPing = 1,
  kPong = 2,
  kQuery = 3,
  kQueryOk = 4,
  kError = 5,
};

/// Typed error codes carried by kError frames. Every failure mode a
/// request can hit maps to exactly one of these, so clients (and the
/// chaos soak) can account for every submitted request.
enum class WireError : uint8_t {
  kMalformed = 1,         // unparseable payload, bad range, bad frame
  kOverloaded = 2,        // admission control shed the request
  kDeadlineExceeded = 3,  // the request's own deadline expired server-side
  kNotFound = 4,          // unknown synopsis key
  kInternal = 5,          // evaluation failed (includes injected faults)
  kShuttingDown = 6,      // arrived after drain began
};

/// Stable lower-case token for an error code ("overloaded", ...), used in
/// metric names, loadgen reports, and log events.
std::string_view WireErrorName(WireError code);

/// The Status code a client surfaces for each wire error.
StatusCode WireErrorStatusCode(WireError code);

struct PingMessage {
  uint64_t request_id = 0;
};

struct QueryRequest {
  uint64_t request_id = 0;
  /// Per-request deadline in milliseconds, measured by the server from
  /// the moment the request is admitted; 0 disables it. Propagated into
  /// the evaluation loop as a core Deadline.
  uint32_t deadline_ms = 0;
  std::string key;
  std::vector<FlatQuery> ranges;
};

struct QueryResponse {
  uint64_t request_id = 0;
  std::vector<double> estimates;
};

struct ErrorResponse {
  uint64_t request_id = 0;
  WireError code = WireError::kInternal;
  std::string message;
};

/// One decoded frame: the type plus its raw payload bytes.
struct Frame {
  MsgType type = MsgType::kPing;
  std::string payload;
};

/// Header fields decoded from the fixed kFrameHeaderBytes prefix.
struct FrameHeader {
  MsgType type = MsgType::kPing;
  uint32_t payload_size = 0;
};

/// Encodes a complete frame (header + payload + CRC trailer).
std::string EncodeFrame(MsgType type, std::string_view payload);

/// Typed encoders.
std::string EncodePing(uint64_t request_id);
std::string EncodePong(uint64_t request_id);
std::string EncodeQuery(const QueryRequest& request);
std::string EncodeQueryOk(const QueryResponse& response);
std::string EncodeError(const ErrorResponse& response);

/// Validates magic/version/size bounds of the fixed-size header.
/// InvalidArgument on any mismatch; `header` must be exactly
/// kFrameHeaderBytes long.
Result<FrameHeader> DecodeFrameHeader(std::string_view header);

/// Validates the CRC trailer of a complete frame (`frame` = header +
/// payload + trailer, with `header` already decoded from its prefix) and
/// returns the payload. InvalidArgument on checksum mismatch.
Result<std::string> CheckFrameCrc(std::string_view frame,
                                  const FrameHeader& header);

/// Payload parsers. Strict: trailing bytes, truncation, or out-of-bounds
/// counts are InvalidArgument — a malformed payload is reported, never
/// partially applied.
Result<PingMessage> ParsePing(std::string_view payload);
Result<QueryRequest> ParseQuery(std::string_view payload);
Result<QueryResponse> ParseQueryOk(std::string_view payload);
Result<ErrorResponse> ParseError(std::string_view payload);

}  // namespace rangesyn::serve

#endif  // RANGESYN_SERVE_PROTOCOL_H_
