#include "serve/loadgen.h"

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "core/logging.h"
#include "core/random.h"
#include "core/strings.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace rangesyn::serve {
namespace {

int64_t MonoNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Derived per-worker seed: splitmix-style spread so adjacent workers get
/// unrelated streams while the whole run stays a function of the seed.
uint64_t WorkerSeed(uint64_t seed, int worker) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (uint64_t{1} + worker);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Shared tally: one slot per StatusCode (indexed by its integer value)
/// plus ok/mismatch, all relaxed atomics so workers never serialize.
struct Tally {
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> mismatched{0};
  std::array<std::atomic<uint64_t>, 16> by_code{};
};

}  // namespace

Result<LoadgenReport> RunLoadgen(
    const LoadgenOptions& options,
    const std::unordered_map<std::string,
                             std::shared_ptr<const FlatSynopsis>>& views) {
  if (options.keys.empty()) {
    return InvalidArgumentError("loadgen: no keys to query");
  }
  if (options.requests < 1) {
    return InvalidArgumentError("loadgen: requests must be >= 1");
  }
  if (options.concurrency < 1) {
    return InvalidArgumentError("loadgen: concurrency must be >= 1");
  }
  if (options.batch < 1) {
    return InvalidArgumentError("loadgen: batch must be >= 1");
  }
  for (const std::string& key : options.keys) {
    if (!views.contains(key)) {
      return InvalidArgumentError(
          StrCat("loadgen: no local view for key '", key, "'"));
    }
  }
  {
    // Fail fast on an unreachable daemon before spawning workers.
    Client probe(options.client);
    RANGESYN_RETURN_IF_ERROR(probe.Ping(options.deadline_ms));
  }

  Tally tally;
  obs::LatencyHistogram latency;  // local instance, not the registry
  std::atomic<int64_t> next{0};
  std::atomic<uint64_t> attempts{0};
  std::atomic<uint64_t> retries{0};
  std::atomic<uint64_t> reconnects{0};

  const int64_t start_ns = MonoNs();
  auto worker = [&](int w) {
    Client client(options.client);
    Rng rng(WorkerSeed(options.seed, w));
    std::vector<FlatQuery> ranges(static_cast<size_t>(options.batch));
    std::vector<double> expected(static_cast<size_t>(options.batch));
    FlatSynopsis::BatchScratch scratch;
    for (;;) {
      if (next.fetch_add(1, std::memory_order_relaxed) >= options.requests) {
        break;
      }
      const std::string& key = options.keys[static_cast<size_t>(
          rng.NextBounded(options.keys.size()))];
      const FlatSynopsis& view = *views.at(key);
      for (FlatQuery& q : ranges) {
        q.a = rng.NextInt(1, view.n());
        q.b = rng.NextInt(q.a, view.n());
      }
      const int64_t t0 = MonoNs();
      Result<std::vector<double>> got =
          client.Query(key, ranges, options.deadline_ms);
      latency.RecordSigned(MonoNs() - t0);
      if (!got.ok()) {
        const auto code = static_cast<size_t>(got.status().code());
        tally.by_code[code % tally.by_code.size()].fetch_add(
            1, std::memory_order_relaxed);
        continue;
      }
      tally.ok.fetch_add(1, std::memory_order_relaxed);
      if (options.verify) {
        // The oracle is the same deterministic build the server serves
        // from, so anything short of bit-equality is a real defect.
        RANGESYN_CHECK(view.EstimateMany(ranges, expected, &scratch).ok());
        if (std::memcmp(got->data(), expected.data(),
                        expected.size() * sizeof(double)) != 0) {
          tally.mismatched.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    attempts.fetch_add(client.stats().attempts, std::memory_order_relaxed);
    retries.fetch_add(client.stats().retries, std::memory_order_relaxed);
    reconnects.fetch_add(client.stats().reconnects,
                         std::memory_order_relaxed);
  };

  // Loadgen workers block on sockets for whole requests; parking pool
  // workers on network I/O would starve eval.
  // lint: waive(LINT-004) dedicated blocking client threads
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(options.concurrency));
  for (int w = 0; w < options.concurrency; ++w) {
    workers.emplace_back(worker, w);  // lint: waive(LINT-004)
  }
  // lint: waive(LINT-004) joining the threads waived above
  for (std::thread& t : workers) t.join();
  const double wall_s =
      static_cast<double>(MonoNs() - start_ns) / 1e9;

  LoadgenReport report;
  report.sent = static_cast<uint64_t>(options.requests);
  report.ok = tally.ok.load(std::memory_order_relaxed);
  report.mismatched = tally.mismatched.load(std::memory_order_relaxed);
  for (size_t i = 0; i < tally.by_code.size(); ++i) {
    const uint64_t n = tally.by_code[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    report.errors[std::string(
        StatusCodeToString(static_cast<StatusCode>(i)))] = n;
  }
  report.attempts = attempts.load(std::memory_order_relaxed);
  report.retries = retries.load(std::memory_order_relaxed);
  report.reconnects = reconnects.load(std::memory_order_relaxed);
  report.wall_s = wall_s;
  report.qps = wall_s > 0 ? static_cast<double>(report.sent) / wall_s : 0.0;
  report.latency_p50_ns =
      static_cast<uint64_t>(latency.ValueAtQuantile(0.50));
  report.latency_p95_ns =
      static_cast<uint64_t>(latency.ValueAtQuantile(0.95));
  report.latency_p99_ns =
      static_cast<uint64_t>(latency.ValueAtQuantile(0.99));
  report.latency_max_ns = latency.Max();
  return report;
}

std::string LoadgenReport::ToJson() const {
  std::string out = "{\"schema_version\":1";
  out += StrCat(",\"sent\":", obs::JsonNumber(sent));
  out += StrCat(",\"ok\":", obs::JsonNumber(ok));
  out += StrCat(",\"mismatched\":", obs::JsonNumber(mismatched));
  out += ",\"errors\":{";
  bool first = true;
  for (const auto& [name, count] : errors) {
    if (!first) out += ",";
    first = false;
    out += StrCat(obs::JsonQuote(name), ":", obs::JsonNumber(count));
  }
  out += "}";
  out += StrCat(",\"attempts\":", obs::JsonNumber(attempts));
  out += StrCat(",\"retries\":", obs::JsonNumber(retries));
  out += StrCat(",\"reconnects\":", obs::JsonNumber(reconnects));
  out += StrCat(",\"wall_s\":", obs::JsonNumber(wall_s));
  out += StrCat(",\"qps\":", obs::JsonNumber(qps));
  out += StrCat(",\"latency_ns\":{\"p50\":", obs::JsonNumber(latency_p50_ns),
                ",\"p95\":", obs::JsonNumber(latency_p95_ns),
                ",\"p99\":", obs::JsonNumber(latency_p99_ns),
                ",\"max\":", obs::JsonNumber(latency_max_ns), "}}");
  return out;
}

std::string LoadgenReport::ToText() const {
  std::string out = StrCat("loadgen: sent=", sent, " ok=", ok,
                           " mismatched=", mismatched, "\n");
  for (const auto& [name, count] : errors) {
    out += StrCat("  error ", name, ": ", count, "\n");
  }
  out += StrCat("  attempts=", attempts, " retries=", retries,
                " reconnects=", reconnects, "\n");
  out += StrCat("  wall=", wall_s, "s qps=", qps, "\n");
  out += StrCat("  latency p50=", latency_p50_ns / 1000,
                "us p95=", latency_p95_ns / 1000,
                "us p99=", latency_p99_ns / 1000,
                "us max=", latency_max_ns / 1000, "us\n");
  return out;
}

}  // namespace rangesyn::serve
