#ifndef RANGESYN_SERVE_CLIENT_H_
#define RANGESYN_SERVE_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/random.h"
#include "core/result.h"
#include "serve/protocol.h"
#include "serve/wire.h"

namespace rangesyn::serve {

/// RSP1 client with timeouts, bounded retries, and exponential backoff
/// (DESIGN.md §12.4). The retry policy is deliberately narrow:
///
///   * retried: transport failures (connect/read/write errors, resets,
///     injected faults, protocol desync — the connection is torn down and
///     re-dialed first) and typed OVERLOADED responses, both only for
///     idempotent requests. Every request this client sends (ping, query)
///     is an idempotent read, so a duplicate delivery after an ambiguous
///     failure is harmless.
///   * never retried: MALFORMED (retrying a bad request cannot fix it),
///     NOT_FOUND, DEADLINE_EXCEEDED (the budget is spent), INTERNAL
///     (not known to be transient), SHUTTING_DOWN (the server asked us to
///     go away).
///
/// Backoff between attempts is exponential with deterministic jitter:
/// attempt k sleeps `min(max_backoff, initial_backoff * 2^k) * (0.5 +
/// 0.5 * u)` where `u` comes from a seeded Rng — reproducible run over
/// run, and capped by the remaining deadline budget.
///
/// The request's `deadline_ms` is simultaneously the server-side
/// evaluation deadline and the client-side *retry budget*: once it
/// expires locally, the client stops retrying and surfaces
/// DeadlineExceeded instead of sleeping past the caller's patience.
struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double connect_timeout_s = 5.0;
  /// Total tries per request (first attempt + retries), >= 1.
  int max_attempts = 3;
  double initial_backoff_s = 0.01;
  double max_backoff_s = 0.5;
  /// Seed for the jitter stream (deterministic backoff schedules).
  uint64_t backoff_seed = 0;
};

/// Attempt accounting, exposed for tests and the loadgen report.
struct ClientStats {
  uint64_t requests = 0;    // round-trips requested by the caller
  uint64_t attempts = 0;    // wire attempts, >= requests
  uint64_t reconnects = 0;  // re-dials after a transport failure
  uint64_t retries = 0;     // backoff-then-retry transitions
};

/// One connection worth of client state. Not thread-safe: a loadgen
/// worker owns one Client; concurrent callers each hold their own.
class Client {
 public:
  explicit Client(const ClientOptions& options);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Liveness probe: one kPing round-trip under the retry policy.
  /// `deadline_ms` bounds the whole attempt sequence (0 = attempts only).
  Status Ping(uint32_t deadline_ms);

  /// Batched estimate query. On success returns one estimate per range,
  /// in range order. Typed server errors surface as the matching Status
  /// code (WireErrorStatusCode); transport failures that outlive the
  /// retry budget surface as Internal (or DeadlineExceeded once the
  /// budget is spent).
  Result<std::vector<double>> Query(const std::string& key,
                                    std::span<const FlatQuery> ranges,
                                    uint32_t deadline_ms);

  /// Drops the connection (the next request re-dials).
  void Disconnect();

  [[nodiscard]] const ClientStats& stats() const { return stats_; }

 private:
  /// Sends `frame_bytes` and reads one response frame, applying the full
  /// retry policy. `what` labels errors.
  Result<Frame> RoundTrip(const std::string& frame_bytes,
                          uint32_t deadline_ms, std::string_view what);
  Status EnsureConnected();
  /// Reads one complete frame (header, payload, CRC) off the wire.
  Result<Frame> ReadFrame();

  const ClientOptions options_;
  Fd fd_;
  WireSites sites_{"serve.client"};
  Rng jitter_;
  ClientStats stats_;
  uint64_t next_request_id_ = 1;
};

}  // namespace rangesyn::serve

#endif  // RANGESYN_SERVE_CLIENT_H_
