#ifndef RANGESYN_SERVE_WIRE_H_
#define RANGESYN_SERVE_WIRE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "core/result.h"

namespace rangesyn::serve {

/// Thin POSIX socket layer under the RSP1 framing: owning fds, exact-size
/// reads/writes with EINTR retries and cooperative stop, and the
/// failpoint sites that make the whole connection lifecycle
/// deterministically chaos-testable (DESIGN.md §12.5).
///
/// Failpoint site families — both ends of a connection carry the same
/// suffixes under their own prefix, so one spec can chaos the server
/// ("serve.conn.*"), the client ("serve.client.*"), or both ("serve.*"):
///
///   serve.accept              accept() returns an injected error
///   serve.connect             client connect() fails
///   <prefix>.read             read() returns an injected hard error
///   <prefix>.read.reset       read() observes an injected ECONNRESET
///   <prefix>.read.short       this read iteration returns at most 1 byte
///   <prefix>.write            write() returns an injected hard error
///   <prefix>.write.reset      write() observes an injected ECONNRESET
///   <prefix>.write.short      this write iteration sends at most 1 byte
///
/// Every site also supports `sleep:MS` latency injection (failpoint.h),
/// which is how the soak and the CI smoke job exercise deadline expiry
/// and slow-peer handling without real network jitter.

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

  /// Closes now (idempotent). EINTR from close is treated as closed —
  /// on Linux the descriptor is released regardless.
  void Close();

  /// shutdown(SHUT_RDWR): wakes any thread blocked reading this fd (its
  /// read returns 0) without racing the close. The drain path uses this
  /// to unblock connection threads before joining them.
  void ShutdownBoth() const;

 private:
  int fd_ = -1;
};

/// Pre-rendered failpoint site names for one connection direction, so the
/// per-iteration ShouldFail checks never concatenate strings.
struct WireSites {
  explicit WireSites(std::string_view prefix);

  std::string read;
  std::string read_reset;
  std::string read_short;
  std::string write;
  std::string write_reset;
  std::string write_short;
};

/// Binds and listens on `host:port` (SO_REUSEADDR; port 0 picks an
/// ephemeral port — read it back with BoundPort).
Result<Fd> ListenTcp(const std::string& host, uint16_t port);

/// The locally bound port of a listening socket.
Result<uint16_t> BoundPort(int listen_fd);

/// Accepts one connection. Polls in `poll_ms` slices and returns
/// FailedPrecondition("stopped") once `stop` is set, so the listener
/// thread can exit promptly on drain. Carries the "serve.accept"
/// failpoint. TCP_NODELAY is set on the accepted socket (request/response
/// traffic, no batching wanted from the kernel).
Result<Fd> AcceptConn(int listen_fd, const std::atomic<bool>* stop,
                      int poll_ms = 100);

/// Connects to `host:port` with a bounded wait. Carries the
/// "serve.connect" failpoint.
Result<Fd> ConnectTcp(const std::string& host, uint16_t port,
                      double timeout_s);

/// Reads exactly `size` bytes into `data`. EINTR retries are bounded;
/// polls in `poll_ms` slices while idle so `stop` (nullable) is honored
/// between frames — but once the first byte of this buffer has arrived
/// the read runs to completion, so a frame in flight is finished rather
/// than abandoned mid-parse (the drain path relies on this).
///
/// Returns OkStatus on success; OutOfRange("eof") on a clean EOF before
/// the first byte (the peer closed between frames); FailedPrecondition
/// ("stopped") when `stop` was observed while idle; Internal on resets,
/// hard errors, injected faults, and mid-buffer EOF.
Status ReadFull(int fd, char* data, size_t size, const WireSites& sites,
                const std::atomic<bool>* stop, int poll_ms = 100);

/// Writes all of `data` (MSG_NOSIGNAL — a dead peer surfaces as a Status,
/// never SIGPIPE). EINTR retries are bounded. Internal on resets, hard
/// errors, and injected faults.
Status WriteFull(int fd, std::string_view data, const WireSites& sites);

}  // namespace rangesyn::serve

#endif  // RANGESYN_SERVE_WIRE_H_
