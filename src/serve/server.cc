#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <span>
#include <thread>
#include <utility>

#include "core/failpoint.h"
#include "core/status.h"
#include "core/strings.h"
#include "core/threadpool.h"
#include "obs/obs.h"

namespace rangesyn::serve {
namespace {

int64_t MonoNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int64_t kBurstWindowNs = 1'000'000'000;  // 1s incident window

}  // namespace

const ServingMetrics& GetServingMetrics() {
  static const ServingMetrics metrics = [] {
    obs::Registry& reg = obs::Registry::Get();
    ServingMetrics m;
    m.requests = reg.GetCounter("serve.request.count");
    m.ok = reg.GetCounter("serve.request.ok");
    m.malformed = reg.GetCounter("serve.request.malformed");
    m.overloaded = reg.GetCounter("serve.request.overloaded");
    m.deadline_exceeded = reg.GetCounter("serve.request.deadline_exceeded");
    m.not_found = reg.GetCounter("serve.request.not_found");
    m.internal = reg.GetCounter("serve.request.internal");
    m.shutting_down = reg.GetCounter("serve.request.shutting_down");
    m.shed = reg.GetCounter("serve.shed.count");
    m.conns_accepted = reg.GetCounter("serve.conn.accepted");
    m.conns_closed = reg.GetCounter("serve.conn.closed");
    m.transport_errors = reg.GetCounter("serve.conn.write_error");
    m.drains = reg.GetCounter("serve.drain.count");
    m.queue_depth = reg.GetGauge("serve.queue.depth");
    m.open_conns = reg.GetGauge("serve.conn.open");
    m.latency = reg.GetHistogram("serve.request.latency");
    return m;
  }();
  return metrics;
}

obs::Counter* ServingMetrics::ForError(WireError code) const {
  switch (code) {
    case WireError::kMalformed:
      return malformed;
    case WireError::kOverloaded:
      return overloaded;
    case WireError::kDeadlineExceeded:
      return deadline_exceeded;
    case WireError::kNotFound:
      return not_found;
    case WireError::kInternal:
      return internal;
    case WireError::kShuttingDown:
      return shutting_down;
  }
  return internal;
}

/// One live connection. The fd is owned here and shared (via the
/// enclosing shared_ptr) between the connection thread and any worker
/// tasks still carrying replies, so the descriptor outlives every writer.
struct Server::Conn {
  explicit Conn(Fd fd_in) : fd(std::move(fd_in)) {}

  Fd fd;
  // lint: waive(LINT-004) blocking-read thread, joined at reap/drain
  std::thread thread;
  /// Serializes reply frames: worker tasks for pipelined requests finish
  /// in any order, and interleaved partial frames would corrupt the
  /// stream.
  Mutex write_mu;
  /// Transport failed (reset / injected fault); stop writing, reader is
  /// woken via shutdown. Guarded by write_mu for the check-then-write.
  std::atomic<bool> dead{false};
  /// Frames currently being handled on the connection thread (read
  /// complete, dispatch not yet done); the drain settle-wait uses it so a
  /// synchronous typed reply is not cut off by the fd shutdown.
  std::atomic<int32_t> busy{0};
  /// ConnLoop returned; the thread is joinable and the conn reapable.
  std::atomic<bool> finished{false};
  WireSites sites{"serve.conn"};
};

Server::Server(SynopsisCatalog catalog, const ServerOptions& options)
    : options_(options), catalog_(std::move(catalog)) {}

Result<std::unique_ptr<Server>> Server::Create(SynopsisCatalog catalog,
                                               const ServerOptions& options) {
  if (options.max_connections < 1) {
    return InvalidArgumentError("serve: max_connections must be >= 1");
  }
  if (options.queue_limit < 1) {
    return InvalidArgumentError("serve: queue_limit must be >= 1");
  }
  if (options.eval_chunk < 1) {
    return InvalidArgumentError("serve: eval_chunk must be >= 1");
  }
  std::unique_ptr<Server> server(
      new Server(std::move(catalog), options));  // lint: waive(LINT-004)
  for (const SynopsisCatalog::EntryInfo& info :
       server->catalog_.ListEntries()) {
    RANGESYN_ASSIGN_OR_RETURN(
        std::shared_ptr<const FlatSynopsis> view,
        server->catalog_.FlatView(info.key));
    server->views_.emplace(info.key, std::move(view));
  }
  return server;
}

Status Server::Start() {
  if (started_.exchange(true)) {
    return FailedPreconditionError("serve: already started");
  }
  RANGESYN_ASSIGN_OR_RETURN(listen_fd_,
                            ListenTcp(options_.host, options_.port));
  RANGESYN_ASSIGN_OR_RETURN(port_, BoundPort(listen_fd_.get()));
  // The listener blocks in accept/poll; parking a pool worker on socket
  // readiness would starve ParallelFor users.
  // lint: waive(LINT-004) dedicated blocking listener thread
  listener_ = std::thread([this] { ListenerLoop(); });
  RANGESYN_LOG_EVENT(Info, "serve.start")
      .Arg("host", options_.host)
      .Arg("port", static_cast<int64_t>(port_))
      .Arg("keys", static_cast<int64_t>(views_.size()))
      .Arg("queue_limit", options_.queue_limit)
      .Arg("max_connections", options_.max_connections);
  return OkStatus();
}

void Server::RequestDrain() { draining_.store(true, std::memory_order_release); }

void Server::ListenerLoop() {
  for (;;) {
    Result<Fd> accepted = AcceptConn(listen_fd_.get(), &draining_);
    if (!accepted.ok()) {
      if (accepted.status().code() == StatusCode::kFailedPrecondition) {
        break;  // drain: stop accepting
      }
      RANGESYN_LOG_EVENT(Warning, "serve.accept.error")
          .Arg("error", accepted.status().message());
      continue;
    }
    counters_.conns_accepted.fetch_add(1, std::memory_order_relaxed);
    GetServingMetrics().conns_accepted->Increment();
    ReapConnections(/*all=*/false);
    if (OpenConnCount() >= options_.max_connections) {
      // Over the connection cap: a typed refusal, then close — the peer
      // learns why instead of seeing a silent RST or an unbounded queue.
      counters_.conns_rejected.fetch_add(1, std::memory_order_relaxed);
      GetServingMetrics().overloaded->Increment();
      NoteOverloadIncident();
      WireSites sites("serve.conn");
      (void)WriteFull(accepted->get(),
                      EncodeError({0, WireError::kOverloaded,
                                   "connection limit reached"}),
                      sites);
      continue;  // accepted's destructor closes the fd
    }
    auto conn = std::make_shared<Conn>(std::move(*accepted));
    {
      MutexLock lock(conns_mu_);
      conns_.push_back(conn);
    }
    GetServingMetrics().open_conns->Set(OpenConnCount());
    // One blocking-read thread per connection; pool workers must never
    // block on a socket (they run eval tasks).
    // lint: waive(LINT-004) dedicated blocking per-connection thread
    conn->thread = std::thread([this, conn] { ConnLoop(conn); });
  }
}

void Server::ConnLoop(const std::shared_ptr<Conn>& conn) {
  std::string frame_bytes;
  for (;;) {
    char header[kFrameHeaderBytes];
    Status read_status = ReadFull(conn->fd.get(), header, kFrameHeaderBytes,
                                  conn->sites, /*stop=*/nullptr);
    if (!read_status.ok()) {
      // Clean EOF between frames, drain shutdown, or a transport fault:
      // either way this connection is over. Faults were already surfaced
      // as a typed client-side error (reset) — nothing is silent.
      break;
    }
    conn->busy.fetch_add(1, std::memory_order_acq_rel);
    bool keep = false;
    Result<FrameHeader> decoded =
        DecodeFrameHeader(std::string_view(header, kFrameHeaderBytes));
    if (!decoded.ok()) {
      // Bad magic/version/size: the stream position is unknowable, so
      // answer typed MALFORMED and close rather than resynchronize.
      counters_.requests.fetch_add(1, std::memory_order_relaxed);
      GetServingMetrics().requests->Increment();
      CountOutcome(WireError::kMalformed, 0);
      ReplyError(conn, 0, WireError::kMalformed,
                 std::string(decoded.status().message()));
    } else {
      const size_t rest = decoded->payload_size + kFrameTrailerBytes;
      frame_bytes.assign(header, kFrameHeaderBytes);
      frame_bytes.resize(kFrameHeaderBytes + rest);
      read_status = ReadFull(conn->fd.get(), frame_bytes.data() + kFrameHeaderBytes,
                             rest, conn->sites, /*stop=*/nullptr);
      if (read_status.ok()) {
        Result<std::string> payload = CheckFrameCrc(frame_bytes, *decoded);
        if (!payload.ok()) {
          // Checksum mismatch: the transport corrupted bytes in flight;
          // typed MALFORMED, then close (framing can no longer be
          // trusted).
          counters_.requests.fetch_add(1, std::memory_order_relaxed);
          GetServingMetrics().requests->Increment();
          CountOutcome(WireError::kMalformed, 0);
          ReplyError(conn, 0, WireError::kMalformed,
                     std::string(payload.status().message()));
        } else {
          Frame frame;
          frame.type = decoded->type;
          frame.payload = *std::move(payload);
          keep = DispatchFrame(conn, frame);
        }
      }
    }
    conn->busy.fetch_sub(1, std::memory_order_acq_rel);
    if (!keep || !read_status.ok() ||
        conn->dead.load(std::memory_order_acquire)) {
      break;
    }
  }
  // Send FIN now: the fd object itself is reclaimed later (ReapConnections
  // or drain), but the peer must observe the close immediately — a client
  // waiting for the next frame after a protocol-violation reply would
  // otherwise hang until its own timeout.
  conn->fd.ShutdownBoth();
  counters_.conns_closed.fetch_add(1, std::memory_order_relaxed);
  GetServingMetrics().conns_closed->Increment();
  conn->finished.store(true, std::memory_order_release);
  GetServingMetrics().open_conns->Set(OpenConnCount());
}

bool Server::DispatchFrame(const std::shared_ptr<Conn>& conn,
                           const Frame& frame) {
  switch (frame.type) {
    case MsgType::kPing: {
      Result<PingMessage> ping = ParsePing(frame.payload);
      if (!ping.ok()) {
        counters_.requests.fetch_add(1, std::memory_order_relaxed);
        GetServingMetrics().requests->Increment();
        CountOutcome(WireError::kMalformed, 0);
        ReplyError(conn, 0, WireError::kMalformed,
                   std::string(ping.status().message()));
        return true;
      }
      // Pings answer even during drain: they are the liveness probe the
      // orchestrator uses to watch the drain make progress.
      counters_.pings.fetch_add(1, std::memory_order_relaxed);
      WriteReply(conn, EncodePong(ping->request_id));
      return true;
    }
    case MsgType::kQuery: {
      counters_.requests.fetch_add(1, std::memory_order_relaxed);
      GetServingMetrics().requests->Increment();
      Result<QueryRequest> parsed = ParseQuery(frame.payload);
      if (!parsed.ok()) {
        CountOutcome(WireError::kMalformed, 0);
        ReplyError(conn, 0, WireError::kMalformed,
                   std::string(parsed.status().message()));
        return true;  // framing is intact; keep serving this connection
      }
      const uint64_t id = parsed->request_id;
      if (draining()) {
        CountOutcome(WireError::kShuttingDown, 0);
        ReplyError(conn, id, WireError::kShuttingDown, "server draining");
        return true;
      }
      // Admission control: reserve a slot before queueing; over the cap,
      // shed with a typed error instead of growing an unbounded queue.
      const int64_t depth =
          inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
      if (depth > options_.queue_limit) {
        ReleaseInflight();
        counters_.shed.fetch_add(1, std::memory_order_relaxed);
        GetServingMetrics().shed->Increment();
        CountOutcome(WireError::kOverloaded, 0);
        ReplyError(conn, id, WireError::kOverloaded,
                   StrCat("queue limit ", options_.queue_limit, " reached"));
        return true;
      }
      GetServingMetrics().queue_depth->Set(depth);
      // The deadline clock starts at admission: time spent queued counts
      // against the request, exactly like time spent evaluating.
      Deadline deadline;
      if (parsed->deadline_ms > 0) {
        deadline = Deadline::After(parsed->deadline_ms / 1000.0);
      }
      const uint64_t admitted_ns = static_cast<uint64_t>(MonoNs());
      GlobalThreadPool().Submit(
          [this, conn, request = *std::move(parsed), deadline,
           admitted_ns]() mutable {
            HandleQuery(conn, std::move(request), deadline, admitted_ns);
          });
      return true;
    }
    case MsgType::kPong:
    case MsgType::kQueryOk:
    case MsgType::kError: {
      // Response frames flowing client->server are a protocol violation.
      counters_.requests.fetch_add(1, std::memory_order_relaxed);
      GetServingMetrics().requests->Increment();
      CountOutcome(WireError::kMalformed, 0);
      ReplyError(conn, 0, WireError::kMalformed,
                 StrCat("unexpected frame type ",
                        static_cast<int>(frame.type), " from client"));
      return false;
    }
  }
  return false;
}

void Server::HandleQuery(const std::shared_ptr<Conn>& conn,
                         QueryRequest request, Deadline deadline,
                         uint64_t admitted_ns) {
  // Evaluation-stage fault/latency injection (the drain test parks
  // requests here with sleep:MS; the soak injects hard failures).
  if (failpoint::ShouldFail("serve.eval")) {
    CountOutcome(WireError::kInternal, admitted_ns);
    ReplyError(conn, request.request_id, WireError::kInternal,
               "failpoint 'serve.eval' fired");
    ReleaseInflight();
    return;
  }
  if (deadline.Expired()) {
    CountOutcome(WireError::kDeadlineExceeded, admitted_ns);
    ReplyError(conn, request.request_id, WireError::kDeadlineExceeded,
               "deadline expired before evaluation");
    ReleaseInflight();
    return;
  }
  const auto it = views_.find(request.key);
  if (it == views_.end()) {
    CountOutcome(WireError::kNotFound, admitted_ns);
    ReplyError(conn, request.request_id, WireError::kNotFound,
               StrCat("unknown synopsis key '", request.key, "'"));
    ReleaseInflight();
    return;
  }
  const FlatSynopsis& view = *it->second;
  for (const FlatQuery& q : request.ranges) {
    if (q.a < 1 || q.a > q.b || q.b > view.n()) {
      CountOutcome(WireError::kMalformed, admitted_ns);
      ReplyError(conn, request.request_id, WireError::kMalformed,
                 StrCat("range [", q.a, ", ", q.b,
                        "] outside domain [1, ", view.n(), "]"));
      ReleaseInflight();
      return;
    }
  }
  QueryResponse response;
  response.request_id = request.request_id;
  response.estimates.resize(request.ranges.size());
  FlatSynopsis::BatchScratch scratch;
  const size_t chunk = static_cast<size_t>(options_.eval_chunk);
  const std::span<const FlatQuery> queries(request.ranges);
  const std::span<double> out(response.estimates);
  for (size_t off = 0; off < queries.size(); off += chunk) {
    if (deadline.Expired()) {
      CountOutcome(WireError::kDeadlineExceeded, admitted_ns);
      ReplyError(conn, request.request_id, WireError::kDeadlineExceeded,
                 StrCat("deadline expired after ", off, " of ",
                        queries.size(), " ranges"));
      ReleaseInflight();
      return;
    }
    const size_t len = std::min(chunk, queries.size() - off);
    // Chunked batches answer bit-identically to one big batch: every
    // element equals the matching EstimateOne regardless of grouping.
    Status eval = view.EstimateMany(queries.subspan(off, len),
                                    out.subspan(off, len), &scratch);
    if (!eval.ok()) {
      CountOutcome(WireError::kInternal, admitted_ns);
      ReplyError(conn, request.request_id, WireError::kInternal,
                 std::string(eval.message()));
      ReleaseInflight();
      return;
    }
  }
  CountOk(admitted_ns);
  WriteReply(conn, EncodeQueryOk(response));
  ReleaseInflight();
}

void Server::WriteReply(const std::shared_ptr<Conn>& conn,
                        const std::string& frame_bytes) {
  MutexLock lock(conn->write_mu);
  if (conn->dead.load(std::memory_order_acquire)) {
    // The transport already failed; the peer observes a connection error
    // (typed client-side). Account for the undeliverable answer.
    counters_.transport_errors.fetch_add(1, std::memory_order_relaxed);
    GetServingMetrics().transport_errors->Increment();
    return;
  }
  Status written = WriteFull(conn->fd.get(), frame_bytes, conn->sites);
  if (!written.ok()) {
    conn->dead.store(true, std::memory_order_release);
    counters_.transport_errors.fetch_add(1, std::memory_order_relaxed);
    GetServingMetrics().transport_errors->Increment();
    RANGESYN_LOG_EVENT(Warning, "serve.conn.write_error")
        .Arg("error", written.message());
    conn->fd.ShutdownBoth();  // wake the reader so the thread exits
  }
}

void Server::ReplyError(const std::shared_ptr<Conn>& conn,
                        uint64_t request_id, WireError code,
                        const std::string& message) {
  WriteReply(conn, EncodeError({request_id, code, message}));
}

void Server::CountOutcome(WireError code, uint64_t admitted_ns) {
  switch (code) {
    case WireError::kMalformed:
      counters_.malformed.fetch_add(1, std::memory_order_relaxed);
      break;
    case WireError::kOverloaded:
      break;  // the shed counter is the per-server tally (caller bumps it)
    case WireError::kDeadlineExceeded:
      counters_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      break;
    case WireError::kNotFound:
      counters_.not_found.fetch_add(1, std::memory_order_relaxed);
      break;
    case WireError::kInternal:
      counters_.internal.fetch_add(1, std::memory_order_relaxed);
      break;
    case WireError::kShuttingDown:
      counters_.shutting_down.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  GetServingMetrics().ForError(code)->Increment();
  if (admitted_ns != 0) {
    GetServingMetrics().latency->RecordSigned(
        MonoNs() - static_cast<int64_t>(admitted_ns));
  }
  if (code == WireError::kOverloaded ||
      code == WireError::kDeadlineExceeded) {
    NoteOverloadIncident();
  }
}

void Server::CountOk(uint64_t admitted_ns) {
  counters_.ok.fetch_add(1, std::memory_order_relaxed);
  GetServingMetrics().ok->Increment();
  GetServingMetrics().latency->RecordSigned(
      MonoNs() - static_cast<int64_t>(admitted_ns));
}

void Server::NoteOverloadIncident() {
  if (options_.overload_dump_threshold <= 0) return;
  const int64_t now = MonoNs();
  int64_t window = burst_window_start_ns_.load(std::memory_order_relaxed);
  if (now - window > kBurstWindowNs) {
    // Stale window: whoever wins the CAS resets the incident count; the
    // loser just counts into the fresh window.
    if (burst_window_start_ns_.compare_exchange_strong(
            window, now, std::memory_order_relaxed)) {
      burst_in_window_.store(0, std::memory_order_relaxed);
    }
  }
  const int32_t incidents =
      burst_in_window_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (incidents < options_.overload_dump_threshold) return;
  const int64_t min_gap_ns =
      static_cast<int64_t>(options_.overload_dump_min_gap_s * 1e9);
  int64_t last = last_overload_dump_ns_.load(std::memory_order_relaxed);
  if (now - last < min_gap_ns) return;
  // The CAS makes exactly one thread per burst the dumper.
  if (!last_overload_dump_ns_.compare_exchange_strong(
          last, now, std::memory_order_relaxed)) {
    return;
  }
  burst_in_window_.store(0, std::memory_order_relaxed);
  RANGESYN_LOG_EVENT(Warning, "serve.overload.dump")
      .Arg("incidents", incidents)
      .Arg("window_ms", kBurstWindowNs / 1'000'000);
  obs::FlightRecorder::Get().AutoDump("overload");
}

void Server::ReleaseInflight() {
  const int64_t depth =
      inflight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  GetServingMetrics().queue_depth->Set(depth);
}

bool Server::AnyConnBusy() const {
  MutexLock lock(conns_mu_);
  for (const std::shared_ptr<Conn>& conn : conns_) {
    if (conn->busy.load(std::memory_order_acquire) > 0) return true;
  }
  return false;
}

int64_t Server::OpenConnCount() const {
  MutexLock lock(conns_mu_);
  int64_t open = 0;
  for (const std::shared_ptr<Conn>& conn : conns_) {
    if (!conn->finished.load(std::memory_order_acquire)) ++open;
  }
  return open;
}

void Server::ReapConnections(bool all) {
  std::vector<std::shared_ptr<Conn>> reaped;
  {
    MutexLock lock(conns_mu_);
    auto keep = conns_.begin();
    for (auto it = conns_.begin(); it != conns_.end(); ++it) {
      if (all || (*it)->finished.load(std::memory_order_acquire)) {
        reaped.push_back(std::move(*it));
      } else {
        *keep++ = std::move(*it);
      }
    }
    conns_.erase(keep, conns_.end());
  }
  // Join outside the lock: a connection thread being joined must never
  // need conns_mu_ (and does not), but keeping joins lock-free makes the
  // settle-wait's OpenConnCount calls unblockable.
  for (const std::shared_ptr<Conn>& conn : reaped) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

Status Server::DrainAndWait(double grace_s) {
  if (!started_.load(std::memory_order_acquire)) {
    return FailedPreconditionError("serve: not started");
  }
  if (drained_.exchange(true)) return OkStatus();  // first caller drains
  RequestDrain();
  if (listener_.joinable()) listener_.join();
  // Settle: every admitted request answered, every connection thread
  // between frames. Polling (1ms) keeps the wait simple and the bound
  // explicit.
  const auto settle_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(grace_s));
  bool settled = false;
  for (;;) {
    if (inflight_.load(std::memory_order_acquire) == 0 && !AnyConnBusy()) {
      settled = true;
      break;
    }
    if (std::chrono::steady_clock::now() >= settle_deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Wake blocked readers (their read returns 0) and collect the threads.
  {
    MutexLock lock(conns_mu_);
    for (const std::shared_ptr<Conn>& conn : conns_) {
      conn->fd.ShutdownBoth();
    }
  }
  ReapConnections(/*all=*/true);
  listen_fd_.Close();
  GetServingMetrics().open_conns->Set(0);
  GetServingMetrics().drains->Increment();
  const ServerSummary s = summary();
  RANGESYN_LOG_EVENT(Info, "serve.drain")
      .Arg("settled", settled)
      .Arg("accepted", s.conns_accepted)
      .Arg("requests", s.requests)
      .Arg("ok", s.ok)
      .Arg("shed", s.shed)
      .Arg("deadline_exceeded", s.deadline_exceeded)
      .Arg("shutting_down", s.shutting_down)
      .Arg("transport_errors", s.transport_errors);
  // The drain postmortem artifact: what the server was doing on the way
  // down, plus a metrics snapshot (satellite: dumps beyond fatal
  // signals).
  obs::FlightRecorder::Get().AutoDump("drain");
  if (!settled) {
    return DeadlineExceededError(
        StrCat("serve: drain did not settle within ", grace_s, "s (",
               inflight_.load(std::memory_order_relaxed),
               " requests in flight)"));
  }
  return OkStatus();
}

ServerSummary Server::summary() const {
  ServerSummary s;
  s.conns_accepted = counters_.conns_accepted.load(std::memory_order_relaxed);
  s.conns_closed = counters_.conns_closed.load(std::memory_order_relaxed);
  s.conns_rejected = counters_.conns_rejected.load(std::memory_order_relaxed);
  s.conns_open = s.conns_accepted - s.conns_rejected - s.conns_closed;
  s.requests = counters_.requests.load(std::memory_order_relaxed);
  s.ok = counters_.ok.load(std::memory_order_relaxed);
  s.shed = counters_.shed.load(std::memory_order_relaxed);
  s.malformed = counters_.malformed.load(std::memory_order_relaxed);
  s.deadline_exceeded =
      counters_.deadline_exceeded.load(std::memory_order_relaxed);
  s.not_found = counters_.not_found.load(std::memory_order_relaxed);
  s.internal = counters_.internal.load(std::memory_order_relaxed);
  s.shutting_down = counters_.shutting_down.load(std::memory_order_relaxed);
  s.pings = counters_.pings.load(std::memory_order_relaxed);
  s.transport_errors =
      counters_.transport_errors.load(std::memory_order_relaxed);
  return s;
}

std::string Server::SummaryLine() const {
  const ServerSummary s = summary();
  return StrCat("serve.summary accepted=", s.conns_accepted,
                " closed=", s.conns_closed, " rejected=", s.conns_rejected,
                " conns_open=", s.conns_open, " requests=", s.requests,
                " ok=", s.ok, " shed=", s.shed, " malformed=", s.malformed,
                " deadline_exceeded=", s.deadline_exceeded,
                " not_found=", s.not_found, " internal=", s.internal,
                " shutting_down=", s.shutting_down, " pings=", s.pings,
                " transport_errors=", s.transport_errors);
}

Server::~Server() {
  if (started_.load(std::memory_order_acquire)) {
    (void)DrainAndWait(/*grace_s=*/5.0);
  }
}

}  // namespace rangesyn::serve
