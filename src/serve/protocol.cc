#include "serve/protocol.h"

#include <limits>

#include "core/bytes.h"
#include "core/crc32c.h"
#include "core/strings.h"

namespace rangesyn::serve {
namespace {

/// Hard cap on the per-frame query count: every range costs 16 payload
/// bytes, so this is implied by kMaxPayloadBytes; checking it explicitly
/// keeps the reader from trusting a length field over the actual bytes.
constexpr uint32_t kMaxRangesPerQuery = kMaxPayloadBytes / 16;

Status RequireAtEnd(const ByteReader& reader, std::string_view what) {
  if (reader.AtEnd()) return OkStatus();
  return InvalidArgumentError(
      StrCat(what, ": ", reader.remaining(), " trailing payload bytes"));
}

}  // namespace

std::string_view WireErrorName(WireError code) {
  switch (code) {
    case WireError::kMalformed:
      return "malformed";
    case WireError::kOverloaded:
      return "overloaded";
    case WireError::kDeadlineExceeded:
      return "deadline_exceeded";
    case WireError::kNotFound:
      return "not_found";
    case WireError::kInternal:
      return "internal";
    case WireError::kShuttingDown:
      return "shutting_down";
  }
  return "unknown";
}

StatusCode WireErrorStatusCode(WireError code) {
  switch (code) {
    case WireError::kMalformed:
      return StatusCode::kInvalidArgument;
    case WireError::kOverloaded:
      return StatusCode::kResourceExhausted;
    case WireError::kDeadlineExceeded:
      return StatusCode::kDeadlineExceeded;
    case WireError::kNotFound:
      return StatusCode::kNotFound;
    case WireError::kInternal:
      return StatusCode::kInternal;
    case WireError::kShuttingDown:
      return StatusCode::kFailedPrecondition;
  }
  return StatusCode::kInternal;
}

std::string EncodeFrame(MsgType type, std::string_view payload) {
  ByteWriter writer;
  writer.WriteU32(kWireMagic);
  writer.WriteU8(kWireVersion);
  writer.WriteU8(static_cast<uint8_t>(type));
  writer.WriteU32(static_cast<uint32_t>(payload.size()));
  std::string frame = writer.Release();
  frame.append(payload);
  ByteWriter trailer;
  trailer.WriteU32(Crc32c(frame));
  frame.append(trailer.buffer());
  return frame;
}

std::string EncodePing(uint64_t request_id) {
  ByteWriter writer;
  writer.WriteU64(request_id);
  return EncodeFrame(MsgType::kPing, writer.buffer());
}

std::string EncodePong(uint64_t request_id) {
  ByteWriter writer;
  writer.WriteU64(request_id);
  return EncodeFrame(MsgType::kPong, writer.buffer());
}

std::string EncodeQuery(const QueryRequest& request) {
  ByteWriter writer;
  writer.WriteU64(request.request_id);
  writer.WriteU32(request.deadline_ms);
  writer.WriteString(request.key);
  writer.WriteU32(static_cast<uint32_t>(request.ranges.size()));
  for (const FlatQuery& q : request.ranges) {
    writer.WriteI64(q.a);
    writer.WriteI64(q.b);
  }
  return EncodeFrame(MsgType::kQuery, writer.buffer());
}

std::string EncodeQueryOk(const QueryResponse& response) {
  ByteWriter writer;
  writer.WriteU64(response.request_id);
  writer.WriteU32(static_cast<uint32_t>(response.estimates.size()));
  for (double v : response.estimates) writer.WriteDouble(v);
  return EncodeFrame(MsgType::kQueryOk, writer.buffer());
}

std::string EncodeError(const ErrorResponse& response) {
  ByteWriter writer;
  writer.WriteU64(response.request_id);
  writer.WriteU8(static_cast<uint8_t>(response.code));
  writer.WriteString(response.message);
  return EncodeFrame(MsgType::kError, writer.buffer());
}

Result<FrameHeader> DecodeFrameHeader(std::string_view header) {
  if (header.size() != kFrameHeaderBytes) {
    return InvalidArgumentError(
        StrCat("frame header: expected ", kFrameHeaderBytes, " bytes, got ",
               header.size()));
  }
  ByteReader reader(header);
  RANGESYN_ASSIGN_OR_RETURN(const uint32_t magic, reader.ReadU32());
  if (magic != kWireMagic) {
    return InvalidArgumentError(StrCat("frame header: bad magic ", magic));
  }
  RANGESYN_ASSIGN_OR_RETURN(const uint8_t version, reader.ReadU8());
  if (version != kWireVersion) {
    return InvalidArgumentError(
        StrCat("frame header: unsupported version ", version));
  }
  RANGESYN_ASSIGN_OR_RETURN(const uint8_t raw_type, reader.ReadU8());
  if (raw_type < static_cast<uint8_t>(MsgType::kPing) ||
      raw_type > static_cast<uint8_t>(MsgType::kError)) {
    return InvalidArgumentError(
        StrCat("frame header: unknown message type ", raw_type));
  }
  FrameHeader decoded;
  decoded.type = static_cast<MsgType>(raw_type);
  RANGESYN_ASSIGN_OR_RETURN(decoded.payload_size, reader.ReadU32());
  if (decoded.payload_size > kMaxPayloadBytes) {
    return InvalidArgumentError(StrCat("frame header: payload size ",
                                       decoded.payload_size, " exceeds cap ",
                                       kMaxPayloadBytes));
  }
  return decoded;
}

Result<std::string> CheckFrameCrc(std::string_view frame,
                                  const FrameHeader& header) {
  const size_t expected =
      kFrameHeaderBytes + header.payload_size + kFrameTrailerBytes;
  if (frame.size() != expected) {
    return InvalidArgumentError(StrCat("frame: expected ", expected,
                                       " bytes, got ", frame.size()));
  }
  const std::string_view body = frame.substr(0, expected - kFrameTrailerBytes);
  ByteReader trailer(frame.substr(expected - kFrameTrailerBytes));
  RANGESYN_ASSIGN_OR_RETURN(const uint32_t stored, trailer.ReadU32());
  const uint32_t actual = Crc32c(body);
  if (stored != actual) {
    return InvalidArgumentError(
        StrCat("frame: CRC mismatch (stored ", stored, ", computed ", actual,
               ")"));
  }
  return std::string(body.substr(kFrameHeaderBytes));
}

Result<PingMessage> ParsePing(std::string_view payload) {
  ByteReader reader(payload);
  PingMessage message;
  RANGESYN_ASSIGN_OR_RETURN(message.request_id, reader.ReadU64());
  RANGESYN_RETURN_IF_ERROR(RequireAtEnd(reader, "ping"));
  return message;
}

Result<QueryRequest> ParseQuery(std::string_view payload) {
  ByteReader reader(payload);
  QueryRequest request;
  RANGESYN_ASSIGN_OR_RETURN(request.request_id, reader.ReadU64());
  RANGESYN_ASSIGN_OR_RETURN(request.deadline_ms, reader.ReadU32());
  RANGESYN_ASSIGN_OR_RETURN(request.key, reader.ReadString());
  RANGESYN_ASSIGN_OR_RETURN(const uint32_t count, reader.ReadU32());
  if (count > kMaxRangesPerQuery) {
    return InvalidArgumentError(
        StrCat("query: range count ", count, " exceeds cap"));
  }
  // The count field must be consistent with the bytes actually present;
  // reserving from the bytes (not the field) keeps a corrupted count from
  // forcing a large allocation before the per-range reads fail.
  if (reader.remaining() != static_cast<size_t>(count) * 16) {
    return InvalidArgumentError(
        StrCat("query: ", reader.remaining(), " payload bytes for ", count,
               " ranges"));
  }
  request.ranges.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    FlatQuery q;
    RANGESYN_ASSIGN_OR_RETURN(q.a, reader.ReadI64());
    RANGESYN_ASSIGN_OR_RETURN(q.b, reader.ReadI64());
    request.ranges.push_back(q);
  }
  RANGESYN_RETURN_IF_ERROR(RequireAtEnd(reader, "query"));
  return request;
}

Result<QueryResponse> ParseQueryOk(std::string_view payload) {
  ByteReader reader(payload);
  QueryResponse response;
  RANGESYN_ASSIGN_OR_RETURN(response.request_id, reader.ReadU64());
  RANGESYN_ASSIGN_OR_RETURN(const uint32_t count, reader.ReadU32());
  if (reader.remaining() != static_cast<size_t>(count) * 8) {
    return InvalidArgumentError(
        StrCat("query-ok: ", reader.remaining(), " payload bytes for ",
               count, " estimates"));
  }
  response.estimates.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    RANGESYN_ASSIGN_OR_RETURN(const double v, reader.ReadDouble());
    response.estimates.push_back(v);
  }
  RANGESYN_RETURN_IF_ERROR(RequireAtEnd(reader, "query-ok"));
  return response;
}

Result<ErrorResponse> ParseError(std::string_view payload) {
  ByteReader reader(payload);
  ErrorResponse response;
  RANGESYN_ASSIGN_OR_RETURN(response.request_id, reader.ReadU64());
  RANGESYN_ASSIGN_OR_RETURN(const uint8_t raw_code, reader.ReadU8());
  if (raw_code < static_cast<uint8_t>(WireError::kMalformed) ||
      raw_code > static_cast<uint8_t>(WireError::kShuttingDown)) {
    return InvalidArgumentError(
        StrCat("error frame: unknown error code ", raw_code));
  }
  response.code = static_cast<WireError>(raw_code);
  RANGESYN_ASSIGN_OR_RETURN(response.message, reader.ReadString());
  RANGESYN_RETURN_IF_ERROR(RequireAtEnd(reader, "error frame"));
  return response;
}

}  // namespace rangesyn::serve
