#include "serve/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "core/deadline.h"
#include "core/strings.h"

namespace rangesyn::serve {

Client::Client(const ClientOptions& options)
    : options_(options), jitter_(options.backoff_seed) {}

void Client::Disconnect() { fd_ = Fd(); }

Status Client::EnsureConnected() {
  if (fd_.valid()) return OkStatus();
  RANGESYN_ASSIGN_OR_RETURN(
      fd_, ConnectTcp(options_.host, options_.port,
                      options_.connect_timeout_s));
  return OkStatus();
}

Result<Frame> Client::ReadFrame() {
  char header[kFrameHeaderBytes];
  RANGESYN_RETURN_IF_ERROR(ReadFull(fd_.get(), header, kFrameHeaderBytes,
                                    sites_, /*stop=*/nullptr));
  RANGESYN_ASSIGN_OR_RETURN(
      FrameHeader decoded,
      DecodeFrameHeader(std::string_view(header, kFrameHeaderBytes)));
  std::string frame_bytes(header, kFrameHeaderBytes);
  const size_t rest = decoded.payload_size + kFrameTrailerBytes;
  frame_bytes.resize(kFrameHeaderBytes + rest);
  RANGESYN_RETURN_IF_ERROR(ReadFull(fd_.get(),
                                    frame_bytes.data() + kFrameHeaderBytes,
                                    rest, sites_, /*stop=*/nullptr));
  Frame frame;
  frame.type = decoded.type;
  RANGESYN_ASSIGN_OR_RETURN(frame.payload,
                            CheckFrameCrc(frame_bytes, decoded));
  return frame;
}

Result<Frame> Client::RoundTrip(const std::string& frame_bytes,
                                uint32_t deadline_ms,
                                std::string_view what) {
  ++stats_.requests;
  Deadline budget;
  if (deadline_ms > 0) budget = Deadline::After(deadline_ms / 1000.0);
  Status last = InternalError(StrCat(what, ": no attempt made"));
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      // Exponential backoff with deterministic jitter; the sleep is also
      // capped so a retry never blows through what is left of the budget
      // just waiting.
      double backoff_s =
          std::min(options_.max_backoff_s,
                   options_.initial_backoff_s *
                       static_cast<double>(uint64_t{1} << (attempt - 1)));
      backoff_s *= 0.5 + 0.5 * jitter_.NextDouble();
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
    }
    if (budget.Expired()) {
      return DeadlineExceededError(
          StrCat(what, ": retry budget exhausted after ", attempt,
                 " attempts; last error: ", last.message()));
    }
    ++stats_.attempts;
    const bool was_connected = fd_.valid();
    Status connected = EnsureConnected();
    if (!connected.ok()) {
      if (was_connected) ++stats_.reconnects;
      last = std::move(connected);
      continue;
    }
    Status sent = WriteFull(fd_.get(), frame_bytes, sites_);
    if (!sent.ok()) {
      // An ambiguous failure: the request may or may not have been
      // applied. Safe to redrive only because every request is an
      // idempotent read.
      Disconnect();
      ++stats_.reconnects;
      last = std::move(sent);
      continue;
    }
    Result<Frame> frame = ReadFrame();
    if (!frame.ok()) {
      Disconnect();
      ++stats_.reconnects;
      last = frame.status();
      continue;
    }
    if (frame->type == MsgType::kError) {
      Result<ErrorResponse> error = ParseError(frame->payload);
      if (!error.ok()) {
        Disconnect();  // undecodable response: desynced, start clean
        ++stats_.reconnects;
        last = error.status();
        continue;
      }
      if (error->code == WireError::kOverloaded) {
        // The one typed error worth retrying: load-shedding is transient
        // by design, and backoff is exactly the pressure release the
        // server is asking for. The connection itself is healthy.
        last = Status(WireErrorStatusCode(error->code),
                      StrCat(what, ": ", error->message));
        continue;
      }
    }
    return frame;
  }
  if (last.code() == StatusCode::kResourceExhausted) {
    return last;  // typed OVERLOADED survived every retry: keep the type
  }
  // Transport-level failures (resets, EOFs, desyncs) surface as Internal
  // once the attempts are spent, per the class contract — the raw code of
  // whichever syscall lost the race is not part of the client's API.
  return InternalError(StrCat(what, ": ", options_.max_attempts,
                              " attempts exhausted; last error: ",
                              last.message()));
}

Status Client::Ping(uint32_t deadline_ms) {
  const uint64_t id = next_request_id_++;
  RANGESYN_ASSIGN_OR_RETURN(
      Frame frame, RoundTrip(EncodePing(id), deadline_ms, "ping"));
  if (frame.type == MsgType::kError) {
    RANGESYN_ASSIGN_OR_RETURN(ErrorResponse error,
                              ParseError(frame.payload));
    return Status(WireErrorStatusCode(error.code),
                  StrCat("ping: server error (", WireErrorName(error.code),
                         "): ", error.message));
  }
  if (frame.type != MsgType::kPong) {
    Disconnect();
    return InternalError(StrCat("ping: unexpected response type ",
                                static_cast<int>(frame.type)));
  }
  RANGESYN_ASSIGN_OR_RETURN(PingMessage pong, ParsePing(frame.payload));
  if (pong.request_id != id) {
    Disconnect();
    return InternalError(StrCat("ping: response id ", pong.request_id,
                                " does not match request id ", id));
  }
  return OkStatus();
}

Result<std::vector<double>> Client::Query(const std::string& key,
                                          std::span<const FlatQuery> ranges,
                                          uint32_t deadline_ms) {
  QueryRequest request;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.key = key;
  request.ranges.assign(ranges.begin(), ranges.end());
  RANGESYN_ASSIGN_OR_RETURN(
      Frame frame,
      RoundTrip(EncodeQuery(request), deadline_ms, "query"));
  if (frame.type == MsgType::kError) {
    RANGESYN_ASSIGN_OR_RETURN(ErrorResponse error,
                              ParseError(frame.payload));
    return Status(WireErrorStatusCode(error.code),
                  StrCat("query: server error (", WireErrorName(error.code),
                         "): ", error.message));
  }
  if (frame.type != MsgType::kQueryOk) {
    Disconnect();
    return InternalError(StrCat("query: unexpected response type ",
                                static_cast<int>(frame.type)));
  }
  RANGESYN_ASSIGN_OR_RETURN(QueryResponse response,
                            ParseQueryOk(frame.payload));
  if (response.request_id != request.request_id) {
    Disconnect();
    return InternalError(StrCat("query: response id ", response.request_id,
                                " does not match request id ",
                                request.request_id));
  }
  if (response.estimates.size() != request.ranges.size()) {
    Disconnect();
    return InternalError(StrCat("query: ", response.estimates.size(),
                                " estimates for ", request.ranges.size(),
                                " ranges"));
  }
  return std::move(response.estimates);
}

}  // namespace rangesyn::serve
