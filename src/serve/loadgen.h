#ifndef RANGESYN_SERVE_LOADGEN_H_
#define RANGESYN_SERVE_LOADGEN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "qpath/flat_synopsis.h"
#include "serve/client.h"

namespace rangesyn::serve {

/// Deterministic traffic generator against a running `rangesyn serve`
/// daemon (`rangesyn loadgen`, DESIGN.md §12.6). Workers draw keys and
/// ranges from seeded Rng streams, so a run is replayable from
/// (seed, keys, requests, concurrency, batch) alone; combined with the
/// determinism contract of FlatSynopsis, the generator can also build the
/// *same* synopsis locally and check every served estimate bit-exactly
/// against its oracle (`verify`).
struct LoadgenOptions {
  /// Connection endpoint and retry policy for every worker.
  ClientOptions client;
  /// Synopsis keys to draw from (uniformly); must be non-empty and every
  /// key must be present in the views map passed to RunLoadgen.
  std::vector<std::string> keys;
  /// Total query requests across all workers.
  int64_t requests = 1000;
  /// Worker threads, each with its own connection.
  int concurrency = 4;
  /// Ranges per request (batched submission).
  int batch = 8;
  /// Per-request deadline and retry budget (0 = none).
  uint32_t deadline_ms = 1000;
  /// Seed for the traffic streams (worker w uses a derived seed).
  uint64_t seed = 1;
  /// Compare every successful response bit-exactly against the local
  /// views; mismatches are counted (and are always a bug somewhere).
  bool verify = true;
};

/// Aggregated outcome of one loadgen run. Every submitted request lands
/// in exactly one bucket: `ok` (optionally verified), or one entry of
/// `errors` keyed by canonical Status code name ("ResourceExhausted",
/// "DeadlineExceeded", ...) — the typed-error accounting the CI smoke
/// job asserts on.
struct LoadgenReport {
  uint64_t sent = 0;
  uint64_t ok = 0;
  /// Successful responses whose estimates were not bit-identical to the
  /// local oracle (only populated with `verify`).
  uint64_t mismatched = 0;
  std::map<std::string, uint64_t> errors;
  /// Client-side attempt accounting, summed over workers.
  uint64_t attempts = 0;
  uint64_t retries = 0;
  uint64_t reconnects = 0;
  double wall_s = 0.0;
  double qps = 0.0;
  /// End-to-end request latency (including retries), nanoseconds.
  uint64_t latency_p50_ns = 0;
  uint64_t latency_p95_ns = 0;
  uint64_t latency_p99_ns = 0;
  uint64_t latency_max_ns = 0;

  /// Machine-readable rendering ({"schema_version":1,...}).
  [[nodiscard]] std::string ToJson() const;
  /// Human-readable multi-line rendering.
  [[nodiscard]] std::string ToText() const;
};

/// Runs the generator to completion. `views` maps every key in
/// `options.keys` to its locally built flat synopsis — used for domain
/// bounds when generating ranges and (with `verify`) as the bit-exact
/// oracle. Fails fast (before spawning workers) when a key is missing,
/// the options are invalid, or an initial ping cannot reach the daemon.
Result<LoadgenReport> RunLoadgen(
    const LoadgenOptions& options,
    const std::unordered_map<std::string,
                             std::shared_ptr<const FlatSynopsis>>& views);

}  // namespace rangesyn::serve

#endif  // RANGESYN_SERVE_LOADGEN_H_
