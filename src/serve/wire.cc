#include "serve/wire.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/failpoint.h"
#include "core/strings.h"

namespace rangesyn::serve {
namespace {

/// Bound on consecutive EINTR retries per syscall — a signal storm (the
/// daemon handles SIGTERM routinely) must degrade to a clean error, not
/// an unbounded spin. Mirrors the atomic-write bound in core/fs.cc.
constexpr int kMaxEintrRetries = 64;

std::string ErrnoText() { return std::strerror(errno); }

/// Waits up to timeout_ms for `events` on `fd`. Returns true when the fd
/// is ready (or hung up — the caller's syscall then reports which), false
/// on a timeout slice. The distinction matters because the sockets are
/// blocking: issuing accept/read after a bare timeout would block
/// indefinitely and never re-check the caller's stop flag.
Result<bool> PollFor(int fd, short events, int timeout_ms,
                     std::string_view what) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  int eintr = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR && ++eintr <= kMaxEintrRetries) continue;
    return InternalError(StrCat(what, ": poll failed: ", ErrnoText()));
  }
}

Result<struct sockaddr_in> ResolveIpv4(const std::string& host,
                                       uint16_t port) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // The daemon serves loopback / explicit-address deployments; hostname
  // resolution is the operator's concern (pass an IP).
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return InvalidArgumentError(
        StrCat("not an IPv4 address: '", host, "'"));
  }
  return addr;
}

void SetNoDelay(int fd) {
  const int one = 1;
  // Best-effort: Nagle only costs latency, never correctness.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

void Fd::Close() {
  if (fd_ < 0) return;
  // EINTR from close is treated as closed: on Linux the descriptor is
  // released before close can be interrupted, so retrying could close a
  // descriptor someone else just received.
  (void)::close(fd_);
  fd_ = -1;
}

void Fd::ShutdownBoth() const {
  if (fd_ < 0) return;
  (void)::shutdown(fd_, SHUT_RDWR);
}

WireSites::WireSites(std::string_view prefix)
    : read(StrCat(prefix, ".read")),
      read_reset(StrCat(prefix, ".read.reset")),
      read_short(StrCat(prefix, ".read.short")),
      write(StrCat(prefix, ".write")),
      write_reset(StrCat(prefix, ".write.reset")),
      write_short(StrCat(prefix, ".write.short")) {}

Result<Fd> ListenTcp(const std::string& host, uint16_t port) {
  RANGESYN_ASSIGN_OR_RETURN(struct sockaddr_in addr,
                            ResolveIpv4(host, port));
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return InternalError(StrCat("socket failed: ", ErrnoText()));
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return InternalError(StrCat("bind to ", host, ":", port,
                                " failed: ", ErrnoText()));
  }
  if (::listen(fd.get(), 128) != 0) {
    return InternalError(StrCat("listen failed: ", ErrnoText()));
  }
  return fd;
}

Result<uint16_t> BoundPort(int listen_fd) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<struct sockaddr*>(&addr),
                    &len) != 0) {
    return InternalError(StrCat("getsockname failed: ", ErrnoText()));
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Fd> AcceptConn(int listen_fd, const std::atomic<bool>* stop,
                      int poll_ms) {
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_acquire)) {
      return FailedPreconditionError("stopped");
    }
    RANGESYN_ASSIGN_OR_RETURN(
        bool ready, PollFor(listen_fd, POLLIN, poll_ms, "accept"));
    if (!ready) continue;  // timeout slice: re-check the stop flag
    if (failpoint::ShouldFail("serve.accept")) {
      return InternalError("failpoint 'serve.accept' fired");
    }
    const int conn = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn >= 0) {
      SetNoDelay(conn);
      return Fd(conn);
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      continue;  // poll timeout slice, interrupted, or peer gave up
    }
    return InternalError(StrCat("accept failed: ", ErrnoText()));
  }
}

Result<Fd> ConnectTcp(const std::string& host, uint16_t port,
                      double timeout_s) {
  if (failpoint::ShouldFail("serve.connect")) {
    return InternalError("failpoint 'serve.connect' fired");
  }
  RANGESYN_ASSIGN_OR_RETURN(struct sockaddr_in addr,
                            ResolveIpv4(host, port));
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    return InternalError(StrCat("socket failed: ", ErrnoText()));
  }
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  (void)::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return InternalError(StrCat("connect to ", host, ":", port,
                                " failed: ", ErrnoText()));
  }
  if (rc != 0) {
    struct pollfd pfd;
    pfd.fd = fd.get();
    pfd.events = POLLOUT;
    pfd.revents = 0;
    const int timeout_ms = static_cast<int>(timeout_s * 1000.0);
    const int ready = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : 1);
    if (ready <= 0) {
      return InternalError(StrCat("connect to ", host, ":", port,
                                  ": timed out after ", timeout_s, "s"));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return InternalError(StrCat("connect to ", host, ":", port,
                                  " failed: ", std::strerror(err)));
    }
  }
  (void)::fcntl(fd.get(), F_SETFL, flags);
  SetNoDelay(fd.get());
  return fd;
}

Status ReadFull(int fd, char* data, size_t size, const WireSites& sites,
                const std::atomic<bool>* stop, int poll_ms) {
  size_t done = 0;
  int eintr = 0;
  while (done < size) {
    // Between frames (nothing read yet) the stop flag wins; mid-buffer
    // the frame is finished so a request in flight is never torn.
    if (done == 0 && stop != nullptr &&
        stop->load(std::memory_order_acquire)) {
      return FailedPreconditionError("stopped");
    }
    RANGESYN_ASSIGN_OR_RETURN(bool ready,
                              PollFor(fd, POLLIN, poll_ms, "read"));
    if (!ready) continue;  // timeout slice: loop (and re-check stop)
    if (failpoint::ShouldFail(sites.read)) {
      return InternalError(StrCat("failpoint '", sites.read, "' fired"));
    }
    if (failpoint::ShouldFail(sites.read_reset)) {
      return InternalError(
          StrCat("failpoint '", sites.read_reset,
                 "' fired: injected ECONNRESET"));
    }
    const size_t want =
        failpoint::ShouldFail(sites.read_short) ? 1 : size - done;
    const ssize_t rc = ::read(fd, data + done, want);
    if (rc > 0) {
      done += static_cast<size_t>(rc);
      eintr = 0;
      continue;
    }
    if (rc == 0) {
      if (done == 0) return OutOfRangeError("eof");
      return InternalError(StrCat("connection closed mid-frame after ",
                                  done, " of ", size, " bytes"));
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // poll slice
    if (errno == EINTR) {
      if (++eintr > kMaxEintrRetries) {
        return InternalError("read: EINTR retry budget exhausted");
      }
      continue;
    }
    if (errno == ECONNRESET || errno == EPIPE) {
      return InternalError(StrCat("connection reset: ", ErrnoText()));
    }
    return InternalError(StrCat("read failed: ", ErrnoText()));
  }
  return OkStatus();
}

Status WriteFull(int fd, std::string_view data, const WireSites& sites) {
  size_t done = 0;
  int eintr = 0;
  while (done < data.size()) {
    if (failpoint::ShouldFail(sites.write)) {
      return InternalError(StrCat("failpoint '", sites.write, "' fired"));
    }
    if (failpoint::ShouldFail(sites.write_reset)) {
      return InternalError(
          StrCat("failpoint '", sites.write_reset,
                 "' fired: injected ECONNRESET"));
    }
    const size_t want =
        failpoint::ShouldFail(sites.write_short) ? 1 : data.size() - done;
    const ssize_t rc =
        ::send(fd, data.data() + done, want, MSG_NOSIGNAL);
    if (rc > 0) {
      done += static_cast<size_t>(rc);
      eintr = 0;
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // A timeout slice just re-polls; a full send buffer resolves when
      // the peer drains it or the connection dies (reported by send).
      RANGESYN_RETURN_IF_ERROR(
          PollFor(fd, POLLOUT, 100, "write").status());
      continue;
    }
    if (rc < 0 && errno == EINTR) {
      if (++eintr > kMaxEintrRetries) {
        return InternalError("write: EINTR retry budget exhausted");
      }
      continue;
    }
    if (rc < 0 && (errno == ECONNRESET || errno == EPIPE)) {
      return InternalError(StrCat("connection reset: ", ErrnoText()));
    }
    return InternalError(StrCat("write failed: ", ErrnoText()));
  }
  return OkStatus();
}

}  // namespace rangesyn::serve
