#ifndef RANGESYN_SERVE_SERVER_H_
#define RANGESYN_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/deadline.h"
#include "core/mutex.h"
#include "core/result.h"
#include "core/thread_annotations.h"
#include "engine/catalog.h"
#include "obs/metrics.h"
#include "qpath/flat_synopsis.h"
#include "serve/protocol.h"
#include "serve/wire.h"

namespace rangesyn::serve {

/// The `rangesyn serve` daemon core (DESIGN.md §12): a listener/worker
/// TCP server speaking RSP1 that answers range-aggregate queries
/// lock-free from pre-resolved catalog FlatViews.
///
/// Robustness model, in order of the request lifecycle:
///   * admission control — at most `queue_limit` requests are admitted
///     (queued + evaluating) at once; excess requests receive a typed
///     OVERLOADED error immediately instead of queueing unboundedly, and
///     connections beyond `max_connections` receive OVERLOADED and are
///     closed. Nothing is ever dropped silently.
///   * per-request deadlines — a request's deadline_ms starts counting at
///     admission and is propagated as a core Deadline into the evaluation
///     loop (polled every `eval_chunk` queries); expiry produces a typed
///     DEADLINE_EXCEEDED error whether it happens while queued or mid-
///     batch.
///   * graceful drain — RequestDrain()/DrainAndWait() stop the listener,
///     answer every already-admitted request, reject newly arriving
///     requests with typed SHUTTING_DOWN, then close connections, flush a
///     flight-recorder dump (reason "drain"), and join every thread.
///   * chaos testability — every accept/read/write carries failpoint
///     sites (serve/wire.h) and evaluation carries "serve.eval", so the
///     soak harness can replay thousands of deterministic fault schedules
///     over the full connection lifecycle.
///
/// Evaluation runs on the process-global work-stealing ThreadPool
/// (core/threadpool.h) via Submit; connection threads only parse frames
/// and write replies, so slow evaluations never stall unrelated
/// connections' framing.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read the bound port back with port().
  uint16_t port = 0;
  /// Connections beyond this receive a typed OVERLOADED error and are
  /// closed without being served.
  int max_connections = 64;
  /// Admission cap: maximum requests admitted (queued + evaluating) at
  /// once; excess requests are shed with a typed OVERLOADED error.
  int queue_limit = 256;
  /// Queries evaluated between deadline polls inside one batch.
  int eval_chunk = 256;
  /// Shed/deadline-exceeded incidents within one second that trigger a
  /// rate-limited flight-recorder dump (reason "overload"); <= 0
  /// disables the trigger.
  int overload_dump_threshold = 32;
  /// Minimum spacing between two overload dumps.
  double overload_dump_min_gap_s = 5.0;
};

/// Per-server counters for the drain summary and tests. The same events
/// also feed the process-global obs metrics (serve.* — see
/// RegisterServingMetrics), which aggregate across servers.
struct ServerSummary {
  uint64_t conns_accepted = 0;
  uint64_t conns_closed = 0;
  uint64_t conns_rejected = 0;  // over max_connections, answered OVERLOADED
  uint64_t conns_open = 0;
  uint64_t requests = 0;  // parsed query requests (admitted or shed)
  uint64_t ok = 0;
  uint64_t shed = 0;  // OVERLOADED responses (admission control)
  uint64_t malformed = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t not_found = 0;
  uint64_t internal = 0;
  uint64_t shutting_down = 0;
  uint64_t pings = 0;
  /// Responses that could not be written back (peer reset mid-reply).
  /// These requests were answered — the transport discarded the answer.
  uint64_t transport_errors = 0;
};

/// Process-global serving metrics, registered eagerly so `rangesyn stats
/// --format=prometheus` exposes them (with zero values) even before the
/// first request. Returns pointers owned by the obs Registry.
struct ServingMetrics {
  obs::Counter* requests;           // serve.request.count
  obs::Counter* ok;                 // serve.request.ok
  obs::Counter* malformed;          // serve.request.malformed
  obs::Counter* overloaded;         // serve.request.overloaded
  obs::Counter* deadline_exceeded;  // serve.request.deadline_exceeded
  obs::Counter* not_found;          // serve.request.not_found
  obs::Counter* internal;           // serve.request.internal
  obs::Counter* shutting_down;      // serve.request.shutting_down
  obs::Counter* shed;               // serve.shed.count
  obs::Counter* conns_accepted;     // serve.conn.accepted
  obs::Counter* conns_closed;       // serve.conn.closed
  obs::Counter* transport_errors;   // serve.conn.write_error
  obs::Counter* drains;             // serve.drain.count
  obs::Gauge* queue_depth;          // serve.queue.depth
  obs::Gauge* open_conns;           // serve.conn.open
  obs::LatencyHistogram* latency;   // serve.request.latency (ns)

  /// The counter a given typed error feeds.
  obs::Counter* ForError(WireError code) const;
};

/// Registers (on first call) and returns the serving metrics.
const ServingMetrics& GetServingMetrics();

class Server {
 public:
  /// Pre-resolves a FlatView for every catalog entry — the per-request
  /// lookup is a const hash-map probe with no lock — and takes ownership
  /// of the catalog. Fails if any entry cannot compile to a flat view.
  static Result<std::unique_ptr<Server>> Create(SynopsisCatalog catalog,
                                                const ServerOptions& options);

  /// Binds the listener and starts accepting. port() is valid after.
  Status Start();

  /// The bound TCP port (after Start).
  [[nodiscard]] uint16_t port() const { return port_; }

  /// Number of synopsis keys served.
  [[nodiscard]] size_t num_keys() const { return views_.size(); }

  /// Marks the server draining: the listener stops accepting and newly
  /// arriving requests are answered with typed SHUTTING_DOWN. Safe to
  /// call from any thread, idempotent, returns immediately.
  void RequestDrain();

  /// True once RequestDrain was called (or drain completed).
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Completes a graceful drain: RequestDrain, wait (bounded by
  /// `grace_s`) for every admitted request to be answered and every
  /// connection thread to go idle, close all connections, join all
  /// threads, flush a flight-recorder "drain" dump and a structured
  /// drain log event. Returns DeadlineExceeded if in-flight work did not
  /// settle within the grace window (threads are still joined — the
  /// connections are shut down first, which unblocks them). Idempotent.
  Status DrainAndWait(double grace_s = 30.0);

  /// Point-in-time copy of the per-server counters.
  [[nodiscard]] ServerSummary summary() const;

  /// One-line text rendering of summary() for the daemon's exit message
  /// (the CI smoke job greps conns_open=0 from it).
  [[nodiscard]] std::string SummaryLine() const;

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

 private:
  struct Conn;

  Server(SynopsisCatalog catalog, const ServerOptions& options);

  void ListenerLoop();
  void ConnLoop(const std::shared_ptr<Conn>& conn);
  /// Parses and dispatches one already-CRC-checked frame. Returns false
  /// when the connection must close (protocol violation).
  bool DispatchFrame(const std::shared_ptr<Conn>& conn,
                     const Frame& frame);
  void HandleQuery(const std::shared_ptr<Conn>& conn, QueryRequest request,
                   Deadline deadline, uint64_t admitted_ns);
  /// Serializes and writes one reply frame under the connection's write
  /// lock; on transport failure shuts the connection down (typed
  /// accounting, never a hang).
  void WriteReply(const std::shared_ptr<Conn>& conn,
                  const std::string& frame_bytes);
  void ReplyError(const std::shared_ptr<Conn>& conn, uint64_t request_id,
                  WireError code, const std::string& message);
  /// Records one typed outcome: per-server counter, global metric,
  /// latency histogram (when admitted_ns != 0), overload-burst tracking.
  void CountOutcome(WireError code, uint64_t admitted_ns);
  void CountOk(uint64_t admitted_ns);
  /// Rate-limited flight dump on shed / deadline-exceeded bursts.
  void NoteOverloadIncident();
  /// Joins finished connection threads (called from the listener loop).
  void ReapConnections(bool all);
  /// Admission release: decrements inflight_ and refreshes the depth
  /// gauge.
  void ReleaseInflight();
  /// True while any connection thread is processing a frame.
  [[nodiscard]] bool AnyConnBusy() const;
  /// Registered, not-yet-finished connections.
  [[nodiscard]] int64_t OpenConnCount() const;

  const ServerOptions options_;
  SynopsisCatalog catalog_;  // owns the estimators behind the views
  /// Immutable after Create: key -> flat view. Lookups are lock-free.
  std::unordered_map<std::string, std::shared_ptr<const FlatSynopsis>>
      views_;

  Fd listen_fd_;
  uint16_t port_ = 0;
  // lint: waive(LINT-004) blocking accept loop, joined on drain
  std::thread listener_;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drained_{false};

  /// Admitted (queued + evaluating) requests; bounded by queue_limit.
  std::atomic<int64_t> inflight_{0};

  mutable Mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_ RANGESYN_GUARDED_BY(conns_mu_);

  /// Per-server counters (see ServerSummary).
  struct Counters {
    std::atomic<uint64_t> conns_accepted{0};
    std::atomic<uint64_t> conns_closed{0};
    std::atomic<uint64_t> conns_rejected{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> malformed{0};
    std::atomic<uint64_t> deadline_exceeded{0};
    std::atomic<uint64_t> not_found{0};
    std::atomic<uint64_t> internal{0};
    std::atomic<uint64_t> shutting_down{0};
    std::atomic<uint64_t> pings{0};
    std::atomic<uint64_t> transport_errors{0};
  };
  Counters counters_;

  /// Overload-burst dump state (satellite: flight dumps beyond crashes).
  std::atomic<int64_t> burst_window_start_ns_{0};
  std::atomic<int32_t> burst_in_window_{0};
  std::atomic<int64_t> last_overload_dump_ns_{0};
};

}  // namespace rangesyn::serve

#endif  // RANGESYN_SERVE_SERVER_H_
