#ifndef RANGESYN_DATA_IO_H_
#define RANGESYN_DATA_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/result.h"
#include "data/workload.h"

namespace rangesyn {

/// Plain-text persistence for datasets and query logs, so experiments can
/// be pinned to files and external traces can be loaded.

/// Writes one count per line ("position,count" with a header).
Status SaveDistributionCsv(const std::vector<int64_t>& data,
                           const std::string& path);

/// Reads a file written by SaveDistributionCsv (or any two-column CSV of
/// "position,count" with positions 1..n appearing exactly once, in any
/// order). Validates completeness and non-negativity.
Result<std::vector<int64_t>> LoadDistributionCsv(const std::string& path);

/// Writes a query log as "a,b" lines with a header.
Status SaveWorkloadCsv(const std::vector<RangeQuery>& queries,
                       const std::string& path);

/// Reads a query log; validates 1 <= a <= b (the domain bound is the
/// caller's to check).
Result<std::vector<RangeQuery>> LoadWorkloadCsv(const std::string& path);

}  // namespace rangesyn

#endif  // RANGESYN_DATA_IO_H_
