#ifndef RANGESYN_DATA_ROUNDING_H_
#define RANGESYN_DATA_ROUNDING_H_

#include <cstdint>
#include <vector>

#include "core/random.h"
#include "core/result.h"

namespace rangesyn {

/// Stochastic rounding policies for converting real-valued frequencies to
/// the integer attribute-value counts the paper's algorithms operate on.
enum class RandomRoundingMode {
  /// Round up or down with probability 1/2 each (the paper's §4 recipe:
  /// "created after doing random rounding, up or down with probability
  /// 1/2, of floats").
  kHalf,
  /// Unbiased: round up with probability frac(x), so E[round(x)] = x.
  kUnbiased,
  /// Deterministic round-to-nearest (ties to even); no rng used.
  kNearest,
};

/// Randomly rounds each entry to an adjacent integer per `mode`, clamping
/// at zero (frequencies cannot be negative). Values must be finite and
/// non-negative.
Result<std::vector<int64_t>> RandomRound(const std::vector<double>& values,
                                         RandomRoundingMode mode, Rng* rng);

/// Scales `values` so they sum to `target_total` and then rounds per `mode`.
/// Useful for producing integer datasets with a controlled total volume
/// (which bounds the Λ state space of the OPT-A dynamic program).
Result<std::vector<int64_t>> ScaleAndRound(const std::vector<double>& values,
                                           double target_total,
                                           RandomRoundingMode mode, Rng* rng);

/// The paper's experimental dataset in one call: n integer keys obtained by
/// random rounding of Zipf(alpha) floats. Deterministic given `seed`.
struct PaperDatasetOptions {
  int64_t n = 127;
  double alpha = 1.8;
  double total_volume = 2000.0;
  uint64_t seed = 20010521;  // PODS 2001 conference date
  bool random_placement = true;
};
Result<std::vector<int64_t>> MakePaperDataset(
    const PaperDatasetOptions& options);

}  // namespace rangesyn

#endif  // RANGESYN_DATA_ROUNDING_H_
