#include "data/distribution.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/logging.h"
#include "core/mathutil.h"
#include "core/strings.h"

namespace rangesyn {
namespace {

/// Rearranges sorted-descending frequencies according to `placement`.
std::vector<double> Place(std::vector<double> descending,
                          Placement placement, Rng* rng) {
  const size_t n = descending.size();
  switch (placement) {
    case Placement::kDecreasing:
      return descending;
    case Placement::kIncreasing: {
      std::reverse(descending.begin(), descending.end());
      return descending;
    }
    case Placement::kAlternating: {
      std::vector<double> out(n);
      size_t lo = 0, hi = n - 1;
      for (size_t i = 0; i < n; ++i) {
        out[i] = (i % 2 == 0) ? descending[lo++] : descending[hi--];
      }
      return out;
    }
    case Placement::kRandom: {
      // Fisher-Yates with the library rng for determinism.
      for (size_t i = n; i > 1; --i) {
        const size_t j = static_cast<size_t>(rng->NextBounded(i));
        std::swap(descending[i - 1], descending[j]);
      }
      return descending;
    }
  }
  return descending;
}

}  // namespace

Result<std::vector<double>> ZipfFrequencies(const ZipfOptions& options,
                                            Rng* rng) {
  if (options.n < 1) return InvalidArgumentError("Zipf: n must be >= 1");
  if (options.alpha < 0) {
    return InvalidArgumentError("Zipf: alpha must be >= 0");
  }
  if (options.total_volume <= 0) {
    return InvalidArgumentError("Zipf: total_volume must be > 0");
  }
  std::vector<double> freq(options.n);
  double norm = 0.0;
  for (int64_t k = 1; k <= options.n; ++k) {
    norm += std::pow(static_cast<double>(k), -options.alpha);
  }
  for (int64_t k = 1; k <= options.n; ++k) {
    freq[k - 1] = options.total_volume *
                  std::pow(static_cast<double>(k), -options.alpha) / norm;
  }
  return Place(std::move(freq), options.placement, rng);
}

Result<std::vector<double>> UniformFrequencies(int64_t n, double lo,
                                               double hi, Rng* rng) {
  if (n < 1) return InvalidArgumentError("Uniform: n must be >= 1");
  if (lo > hi) return InvalidArgumentError("Uniform: lo must be <= hi");
  if (lo < 0) return InvalidArgumentError("Uniform: frequencies must be >= 0");
  std::vector<double> freq(n);
  for (auto& f : freq) f = rng->NextDouble(lo, hi);
  return freq;
}

Result<std::vector<double>> GaussianMixtureFrequencies(
    const GaussianMixtureOptions& options, Rng* rng) {
  if (options.n < 1) return InvalidArgumentError("Gauss: n must be >= 1");
  if (options.num_bumps < 1) {
    return InvalidArgumentError("Gauss: num_bumps must be >= 1");
  }
  if (options.min_sigma <= 0 || options.max_sigma < options.min_sigma) {
    return InvalidArgumentError("Gauss: need 0 < min_sigma <= max_sigma");
  }
  std::vector<double> freq(options.n, 0.0);
  for (int b = 0; b < options.num_bumps; ++b) {
    const double center = rng->NextDouble(0.0, static_cast<double>(options.n));
    const double sigma = rng->NextDouble(options.min_sigma, options.max_sigma);
    const double weight = rng->NextDouble(0.5, 1.5);
    for (int64_t i = 0; i < options.n; ++i) {
      const double z = (static_cast<double>(i) + 0.5 - center) / sigma;
      freq[i] += weight * std::exp(-0.5 * z * z);
    }
  }
  const double mass = std::accumulate(freq.begin(), freq.end(), 0.0);
  RANGESYN_CHECK_GT(mass, 0.0);
  for (auto& f : freq) f *= options.total_volume / mass;
  return freq;
}

Result<std::vector<double>> StepFrequencies(int64_t n, int num_steps,
                                            double max_level, Rng* rng) {
  if (n < 1) return InvalidArgumentError("Step: n must be >= 1");
  if (num_steps < 1 || num_steps > n) {
    return InvalidArgumentError("Step: need 1 <= num_steps <= n");
  }
  if (max_level <= 0) return InvalidArgumentError("Step: max_level must be > 0");
  // Choose num_steps-1 distinct interior breakpoints.
  std::vector<int64_t> breaks;
  breaks.push_back(0);
  while (static_cast<int>(breaks.size()) < num_steps) {
    const int64_t b = rng->NextInt(1, n - 1);
    if (std::find(breaks.begin(), breaks.end(), b) == breaks.end()) {
      breaks.push_back(b);
    }
  }
  breaks.push_back(n);
  std::sort(breaks.begin(), breaks.end());
  std::vector<double> freq(n);
  for (size_t s = 0; s + 1 < breaks.size(); ++s) {
    const double level = rng->NextDouble(0.0, max_level);
    for (int64_t i = breaks[s]; i < breaks[s + 1]; ++i) freq[i] = level;
  }
  return freq;
}

Result<std::vector<double>> SpikeFrequencies(int64_t n, int num_spikes,
                                             double background,
                                             double spike_mass, Rng* rng) {
  if (n < 1) return InvalidArgumentError("Spike: n must be >= 1");
  if (num_spikes < 0 || num_spikes > n) {
    return InvalidArgumentError("Spike: need 0 <= num_spikes <= n");
  }
  if (background < 0 || spike_mass < 0) {
    return InvalidArgumentError("Spike: masses must be >= 0");
  }
  std::vector<double> freq(n, background);
  std::vector<int64_t> positions(n);
  std::iota(positions.begin(), positions.end(), 0);
  for (int s = 0; s < num_spikes; ++s) {
    const size_t remaining = positions.size() - static_cast<size_t>(s);
    const size_t j =
        static_cast<size_t>(s) + static_cast<size_t>(rng->NextBounded(remaining));
    std::swap(positions[s], positions[j]);
    freq[positions[s]] += spike_mass * rng->NextDouble(0.5, 1.5);
  }
  return freq;
}

Result<std::vector<double>> SelfSimilarFrequencies(int64_t n, double bias,
                                                   double total_volume,
                                                   Rng* rng) {
  if (n < 1 || !IsPowerOfTwo(static_cast<uint64_t>(n))) {
    return InvalidArgumentError("SelfSimilar: n must be a power of two");
  }
  if (bias <= 0.0 || bias >= 1.0) {
    return InvalidArgumentError("SelfSimilar: bias must be in (0,1)");
  }
  if (total_volume <= 0) {
    return InvalidArgumentError("SelfSimilar: total_volume must be > 0");
  }
  std::vector<double> freq(n, 0.0);
  // Recursive b-model: split mass between halves with a randomly oriented
  // bias at every level.
  struct Frame {
    int64_t lo, len;
    double mass;
  };
  std::vector<Frame> stack{{0, n, total_volume}};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.len == 1) {
      freq[f.lo] += f.mass;
      continue;
    }
    const double left = rng->NextBool() ? bias : (1.0 - bias);
    stack.push_back({f.lo, f.len / 2, f.mass * left});
    stack.push_back({f.lo + f.len / 2, f.len / 2, f.mass * (1.0 - left)});
  }
  return freq;
}

Result<std::vector<double>> CuspFrequencies(int64_t n, double alpha,
                                            double total_volume) {
  if (n < 1) return InvalidArgumentError("Cusp: n must be >= 1");
  if (total_volume <= 0) {
    return InvalidArgumentError("Cusp: total_volume must be > 0");
  }
  std::vector<double> freq(n);
  const int64_t mid = n / 2;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t dist = (i < mid) ? (mid - i) : (i - mid);
    freq[i] = std::pow(static_cast<double>(dist + 1), -alpha);
  }
  const double mass = std::accumulate(freq.begin(), freq.end(), 0.0);
  for (auto& f : freq) f *= total_volume / mass;
  return freq;
}

Result<std::vector<double>> MakeNamedDistribution(const std::string& name,
                                                  int64_t n,
                                                  double total_volume,
                                                  Rng* rng) {
  if (name == "zipf") {
    ZipfOptions opt;
    opt.n = n;
    opt.total_volume = total_volume;
    return ZipfFrequencies(opt, rng);
  }
  if (name == "zipf_sorted") {
    ZipfOptions opt;
    opt.n = n;
    opt.total_volume = total_volume;
    opt.placement = Placement::kDecreasing;
    return ZipfFrequencies(opt, rng);
  }
  if (name == "uniform") {
    return UniformFrequencies(n, 0.0, 2.0 * total_volume / static_cast<double>(n),
                              rng);
  }
  if (name == "gauss") {
    GaussianMixtureOptions opt;
    opt.n = n;
    opt.total_volume = total_volume;
    return GaussianMixtureFrequencies(opt, rng);
  }
  if (name == "step") {
    return StepFrequencies(n, std::max<int>(2, static_cast<int>(n / 16)),
                           2.0 * total_volume / static_cast<double>(n), rng);
  }
  if (name == "spike") {
    return SpikeFrequencies(n, std::max<int>(1, static_cast<int>(n / 25)),
                            total_volume / (4.0 * static_cast<double>(n)),
                            total_volume / 20.0, rng);
  }
  if (name == "selfsim") {
    const int64_t n2 = static_cast<int64_t>(NextPowerOfTwo(
        static_cast<uint64_t>(n)));
    return SelfSimilarFrequencies(n2, 0.8, total_volume, rng);
  }
  if (name == "cusp") {
    return CuspFrequencies(n, 1.2, total_volume);
  }
  return InvalidArgumentError(StrCat("unknown distribution '", name, "'"));
}

}  // namespace rangesyn
