#include "data/rounding.h"

#include <cmath>
#include <numeric>

#include "core/mathutil.h"
#include "core/strings.h"
#include "data/distribution.h"

namespace rangesyn {

Result<std::vector<int64_t>> RandomRound(const std::vector<double>& values,
                                         RandomRoundingMode mode, Rng* rng) {
  std::vector<int64_t> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (!std::isfinite(v) || v < 0.0) {
      return InvalidArgumentError(
          StrCat("RandomRound: value at index ", i, " is ", v,
                 "; need finite non-negative"));
    }
    const double lo = std::floor(v);
    const double frac = v - lo;
    int64_t r;
    switch (mode) {
      case RandomRoundingMode::kHalf:
        // Exact integers stay put; otherwise flip a fair coin.
        r = static_cast<int64_t>(lo) +
            ((frac > 0.0 && rng->NextBool(0.5)) ? 1 : 0);
        break;
      case RandomRoundingMode::kUnbiased:
        r = static_cast<int64_t>(lo) + (rng->NextBool(frac) ? 1 : 0);
        break;
      case RandomRoundingMode::kNearest:
        r = RoundHalfToEven(v);
        break;
      default:
        return InvalidArgumentError("RandomRound: unknown mode");
    }
    out[i] = r < 0 ? 0 : r;
  }
  return out;
}

Result<std::vector<int64_t>> ScaleAndRound(const std::vector<double>& values,
                                           double target_total,
                                           RandomRoundingMode mode,
                                           Rng* rng) {
  if (target_total <= 0) {
    return InvalidArgumentError("ScaleAndRound: target_total must be > 0");
  }
  const double total = std::accumulate(values.begin(), values.end(), 0.0);
  if (total <= 0) {
    return InvalidArgumentError("ScaleAndRound: values sum to zero");
  }
  std::vector<double> scaled(values.size());
  const double factor = target_total / total;
  for (size_t i = 0; i < values.size(); ++i) scaled[i] = values[i] * factor;
  return RandomRound(scaled, mode, rng);
}

Result<std::vector<int64_t>> MakePaperDataset(
    const PaperDatasetOptions& options) {
  Rng rng(options.seed);
  ZipfOptions zipf;
  zipf.n = options.n;
  zipf.alpha = options.alpha;
  zipf.total_volume = options.total_volume;
  zipf.placement =
      options.random_placement ? Placement::kRandom : Placement::kDecreasing;
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> floats,
                            ZipfFrequencies(zipf, &rng));
  return RandomRound(floats, RandomRoundingMode::kHalf, &rng);
}

}  // namespace rangesyn
