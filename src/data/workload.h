#ifndef RANGESYN_DATA_WORKLOAD_H_
#define RANGESYN_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "core/random.h"
#include "core/result.h"

namespace rangesyn {

/// A range-sum query over the attribute domain: sum of A[a..b] with
/// 1 <= a <= b <= n (1-based, inclusive on both ends, the paper's
/// convention).
struct RangeQuery {
  int64_t a = 1;
  int64_t b = 1;

  friend bool operator==(const RangeQuery&, const RangeQuery&) = default;
};

/// All n(n+1)/2 ranges in lexicographic order — the query population that
/// defines the paper's SSE objective.
std::vector<RangeQuery> AllRanges(int64_t n);

/// `count` ranges with endpoints drawn uniformly from all ranges.
Result<std::vector<RangeQuery>> UniformRandomRanges(int64_t n, int64_t count,
                                                    Rng* rng);

/// `count` short ranges: left endpoint uniform, length geometric with mean
/// `mean_length` (clamped to the domain). Models drill-down workloads.
Result<std::vector<RangeQuery>> ShortBiasedRanges(int64_t n, int64_t count,
                                                  double mean_length,
                                                  Rng* rng);

/// All n equality (point) queries a == b.
std::vector<RangeQuery> PointQueries(int64_t n);

/// All n prefix ranges [1, b] — the hierarchical special case earlier work
/// optimized for.
std::vector<RangeQuery> PrefixQueries(int64_t n);

/// All dyadic ranges [k*2^j + 1, (k+1)*2^j] that fit inside [1, n] — the
/// other restricted family ("hierarchically-limited range queries")
/// earlier work handled optimally. O(n) queries.
std::vector<RangeQuery> DyadicQueries(int64_t n);

/// `count` ranges whose centers follow a Gaussian around `center_fraction`
/// of the domain — models hot-spot analytical workloads.
Result<std::vector<RangeQuery>> HotSpotRanges(int64_t n, int64_t count,
                                              double center_fraction,
                                              double spread_fraction,
                                              Rng* rng);

}  // namespace rangesyn

#endif  // RANGESYN_DATA_WORKLOAD_H_
