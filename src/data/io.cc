#include "data/io.h"

#include <sstream>

#include "core/failpoint.h"
#include "core/fs.h"
#include "core/strings.h"

namespace rangesyn {
namespace {

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  RANGESYN_FAILPOINT("data.io.load");
  RANGESYN_ASSIGN_OR_RETURN(const std::string contents,
                            ReadFileToString(path));
  std::vector<std::string> lines;
  for (const std::string& line : StrSplit(contents, '\n')) {
    const std::string_view stripped = StripWhitespace(line);
    if (!stripped.empty()) lines.emplace_back(stripped);
  }
  return lines;
}

}  // namespace

Status SaveDistributionCsv(const std::vector<int64_t>& data,
                           const std::string& path) {
  if (data.empty()) return InvalidArgumentError("SaveDistributionCsv: empty");
  RANGESYN_FAILPOINT("data.io.save");
  std::ostringstream out;
  out << "position,count\n";
  for (size_t i = 0; i < data.size(); ++i) {
    out << (i + 1) << "," << data[i] << "\n";
  }
  // Atomic temp-file + rename: a crash or injected fault mid-save never
  // leaves a truncated CSV at `path`.
  return AtomicWriteFile(path, out.str());
}

Result<std::vector<int64_t>> LoadDistributionCsv(const std::string& path) {
  RANGESYN_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  if (lines.empty()) return InvalidArgumentError("distribution CSV empty");
  size_t start = 0;
  if (StartsWith(lines[0], "position")) start = 1;
  const size_t n = lines.size() - start;
  if (n == 0) return InvalidArgumentError("distribution CSV has no rows");
  std::vector<int64_t> data(n, -1);
  for (size_t i = start; i < lines.size(); ++i) {
    const std::vector<std::string> cells = StrSplit(lines[i], ',');
    int64_t pos = 0, count = 0;
    if (cells.size() != 2 || !ParseInt64(cells[0], &pos) ||
        !ParseInt64(cells[1], &count)) {
      return InvalidArgumentError(
          StrCat("bad distribution CSV line: '", lines[i], "'"));
    }
    if (pos < 1 || pos > static_cast<int64_t>(n)) {
      return InvalidArgumentError(
          StrCat("position ", pos, " outside 1..", n));
    }
    if (count < 0) {
      return InvalidArgumentError(StrCat("negative count at position ", pos));
    }
    if (data[static_cast<size_t>(pos - 1)] != -1) {
      return InvalidArgumentError(StrCat("duplicate position ", pos));
    }
    data[static_cast<size_t>(pos - 1)] = count;
  }
  for (size_t i = 0; i < n; ++i) {
    if (data[i] == -1) {
      return InvalidArgumentError(StrCat("missing position ", i + 1));
    }
  }
  return data;
}

Status SaveWorkloadCsv(const std::vector<RangeQuery>& queries,
                       const std::string& path) {
  RANGESYN_FAILPOINT("data.io.save");
  std::ostringstream out;
  out << "a,b\n";
  for (const RangeQuery& q : queries) out << q.a << "," << q.b << "\n";
  return AtomicWriteFile(path, out.str());
}

Result<std::vector<RangeQuery>> LoadWorkloadCsv(const std::string& path) {
  RANGESYN_ASSIGN_OR_RETURN(std::vector<std::string> lines, ReadLines(path));
  std::vector<RangeQuery> out;
  size_t start = 0;
  if (!lines.empty() && StartsWith(lines[0], "a")) start = 1;
  out.reserve(lines.size());
  for (size_t i = start; i < lines.size(); ++i) {
    const std::vector<std::string> cells = StrSplit(lines[i], ',');
    RangeQuery q;
    if (cells.size() != 2 || !ParseInt64(cells[0], &q.a) ||
        !ParseInt64(cells[1], &q.b)) {
      return InvalidArgumentError(
          StrCat("bad workload CSV line: '", lines[i], "'"));
    }
    if (q.a < 1 || q.a > q.b) {
      return InvalidArgumentError(
          StrCat("bad query [", q.a, ",", q.b, "] in workload CSV"));
    }
    out.push_back(q);
  }
  return out;
}

}  // namespace rangesyn
