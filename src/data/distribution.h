#ifndef RANGESYN_DATA_DISTRIBUTION_H_
#define RANGESYN_DATA_DISTRIBUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/random.h"
#include "core/result.h"

namespace rangesyn {

/// How generated frequency masses are laid out over the attribute domain.
enum class Placement {
  kDecreasing,   // heaviest frequency at position 1, monotone decreasing
  kIncreasing,   // mirror image of kDecreasing
  kRandom,       // random permutation of the frequency multiset
  kAlternating,  // heavy/light interleaved (max, min, 2nd max, 2nd min, ...)
};

/// Parameters for the Zipf frequency generator. With `n` distinct attribute
/// values the k-th largest frequency is proportional to 1/k^alpha, scaled so
/// frequencies sum to `total_volume`. This is the generator behind the
/// paper's experimental dataset ("Zipf distribution with tail exponent
/// alpha = 1.8").
struct ZipfOptions {
  int64_t n = 127;
  double alpha = 1.8;
  double total_volume = 2000.0;
  Placement placement = Placement::kRandom;
};

/// Generates real-valued Zipf frequencies. Requires n >= 1, alpha >= 0,
/// total_volume > 0. The rng is used only for placement.
Result<std::vector<double>> ZipfFrequencies(const ZipfOptions& options,
                                            Rng* rng);

/// Uniform iid frequencies in [lo, hi].
Result<std::vector<double>> UniformFrequencies(int64_t n, double lo,
                                               double hi, Rng* rng);

/// Mixture of `k` Gaussian bumps over the domain with random centers,
/// widths in [min_sigma, max_sigma] (in domain units) and total mass
/// `total_volume`. Produces smooth multi-modal distributions.
struct GaussianMixtureOptions {
  int64_t n = 256;
  int num_bumps = 5;
  double min_sigma = 2.0;
  double max_sigma = 16.0;
  double total_volume = 10000.0;
};
Result<std::vector<double>> GaussianMixtureFrequencies(
    const GaussianMixtureOptions& options, Rng* rng);

/// Piecewise-constant distribution with `num_steps` random plateau levels —
/// the best case for bucket-based synopses.
Result<std::vector<double>> StepFrequencies(int64_t n, int num_steps,
                                            double max_level, Rng* rng);

/// Mostly-flat background with `num_spikes` isolated heavy values — the
/// hard case that separates point-optimal from range-optimal synopses.
Result<std::vector<double>> SpikeFrequencies(int64_t n, int num_spikes,
                                             double background,
                                             double spike_mass, Rng* rng);

/// Self-similar ("80/20 law", b-model) distribution: mass splits between
/// halves with ratio `bias` recursively. n must be a power of two.
Result<std::vector<double>> SelfSimilarFrequencies(int64_t n, double bias,
                                                   double total_volume,
                                                   Rng* rng);

/// "Cusp" distribution: increasing Zipf frequencies up to the middle of the
/// domain, decreasing after (a classic histogram-literature shape).
Result<std::vector<double>> CuspFrequencies(int64_t n, double alpha,
                                            double total_volume);

/// Named dataset factory used by benchmark harnesses:
/// "zipf", "uniform", "gauss", "step", "spike", "selfsim", "cusp".
/// `total_volume` applies where the family supports it.
Result<std::vector<double>> MakeNamedDistribution(const std::string& name,
                                                  int64_t n,
                                                  double total_volume,
                                                  Rng* rng);

}  // namespace rangesyn

#endif  // RANGESYN_DATA_DISTRIBUTION_H_
