#include "data/workload.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace rangesyn {

std::vector<RangeQuery> AllRanges(int64_t n) {
  RANGESYN_CHECK_GE(n, 1);
  std::vector<RangeQuery> out;
  out.reserve(static_cast<size_t>(n * (n + 1) / 2));
  for (int64_t a = 1; a <= n; ++a) {
    for (int64_t b = a; b <= n; ++b) out.push_back({a, b});
  }
  return out;
}

Result<std::vector<RangeQuery>> UniformRandomRanges(int64_t n, int64_t count,
                                                    Rng* rng) {
  if (n < 1) return InvalidArgumentError("UniformRandomRanges: n >= 1");
  if (count < 0) return InvalidArgumentError("UniformRandomRanges: count >= 0");
  std::vector<RangeQuery> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    int64_t a = rng->NextInt(1, n);
    int64_t b = rng->NextInt(1, n);
    if (a > b) std::swap(a, b);
    out.push_back({a, b});
  }
  return out;
}

Result<std::vector<RangeQuery>> ShortBiasedRanges(int64_t n, int64_t count,
                                                  double mean_length,
                                                  Rng* rng) {
  if (n < 1) return InvalidArgumentError("ShortBiasedRanges: n >= 1");
  if (count < 0) return InvalidArgumentError("ShortBiasedRanges: count >= 0");
  if (mean_length < 1.0) {
    return InvalidArgumentError("ShortBiasedRanges: mean_length >= 1");
  }
  // Geometric length with mean mean_length: success prob p = 1/mean_length.
  const double p = 1.0 / mean_length;
  std::vector<RangeQuery> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    int64_t len = 1;
    while (len < n && rng->NextDouble() > p) ++len;
    const int64_t a = rng->NextInt(1, n - len + 1);
    out.push_back({a, a + len - 1});
  }
  return out;
}

std::vector<RangeQuery> PointQueries(int64_t n) {
  RANGESYN_CHECK_GE(n, 1);
  std::vector<RangeQuery> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 1; i <= n; ++i) out.push_back({i, i});
  return out;
}

std::vector<RangeQuery> PrefixQueries(int64_t n) {
  RANGESYN_CHECK_GE(n, 1);
  std::vector<RangeQuery> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t b = 1; b <= n; ++b) out.push_back({1, b});
  return out;
}

std::vector<RangeQuery> DyadicQueries(int64_t n) {
  RANGESYN_CHECK_GE(n, 1);
  std::vector<RangeQuery> out;
  for (int64_t len = 1; len <= n; len *= 2) {
    for (int64_t start = 1; start + len - 1 <= n; start += len) {
      out.push_back({start, start + len - 1});
    }
  }
  return out;
}

Result<std::vector<RangeQuery>> HotSpotRanges(int64_t n, int64_t count,
                                              double center_fraction,
                                              double spread_fraction,
                                              Rng* rng) {
  if (n < 1) return InvalidArgumentError("HotSpotRanges: n >= 1");
  if (count < 0) return InvalidArgumentError("HotSpotRanges: count >= 0");
  if (center_fraction < 0.0 || center_fraction > 1.0) {
    return InvalidArgumentError("HotSpotRanges: center_fraction in [0,1]");
  }
  if (spread_fraction <= 0.0) {
    return InvalidArgumentError("HotSpotRanges: spread_fraction > 0");
  }
  const double center = center_fraction * static_cast<double>(n);
  const double spread = spread_fraction * static_cast<double>(n);
  std::vector<RangeQuery> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    const double c = center + spread * rng->NextGaussian();
    const double half = std::fabs(spread * rng->NextGaussian()) / 2.0 + 0.5;
    int64_t a = static_cast<int64_t>(std::llround(c - half));
    int64_t b = static_cast<int64_t>(std::llround(c + half));
    a = std::clamp<int64_t>(a, 1, n);
    b = std::clamp<int64_t>(b, 1, n);
    if (a > b) std::swap(a, b);
    out.push_back({a, b});
  }
  return out;
}

}  // namespace rangesyn
