#ifndef RANGESYN_ENGINE_FACTORY_H_
#define RANGESYN_ENGINE_FACTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "core/deadline.h"
#include "core/estimator.h"
#include "core/result.h"
#include "qpath/flat_synopsis.h"

namespace rangesyn {

/// A request to build one synopsis under a storage budget measured in
/// machine words — the accounting of the paper's Figure 1 x-axis. The
/// factory converts the budget into the method's natural parameter
/// (buckets or coefficients) using the per-method words-per-unit cost.
struct SynopsisSpec {
  /// One of KnownSynopsisMethods().
  std::string method;

  /// Storage budget in words; the built synopsis uses at most this much.
  int64_t budget_words = 16;

  /// OPT-A family only: rounding granularity for "opta-rounded"
  /// (Definition 3's parameter x).
  int64_t granularity = 2;

  /// OPT-A family only: DP state safety cap.
  uint64_t max_states = 50'000'000;
};

/// Methods the factory understands:
///   "naive", "equiwidth", "equidepth", "maxdiff", "vopt", "pointopt",
///   "a0", "sap0", "sap1", "sap2", "prefixopt", "opta", "opta-rounded",
///   "equidepth-reopt", "a0-reopt", "opta-reopt",
///   "wave-point", "topbb", "wave-range-opt".
std::vector<std::string> KnownSynopsisMethods();

/// Builds a synopsis for `data` per `spec`. The heavy constructions
/// (pseudo-polynomial OPT-A) can fail with ResourceExhausted; everything
/// else is polynomial. Strict: no deadline, no fallback — use
/// BuildSynopsisWithOptions for graceful degradation.
Result<RangeEstimatorPtr> BuildSynopsis(const SynopsisSpec& spec,
                                        const std::vector<int64_t>& data);

/// Resource limits for a degradable build.
struct BuildOptions {
  /// Cooperative deadline observed inside the heavy constructions. The
  /// default never expires.
  Deadline deadline;

  /// Overrides spec.max_states when non-zero (OPT-A family state cap).
  uint64_t max_states = 0;
};

/// A build that may have degraded. `estimator` is always usable.
struct BuildOutcome {
  RangeEstimatorPtr estimator;

  /// Method actually built — spec.method, or the fallback that succeeded.
  std::string built_method;

  /// True when the requested method tripped its deadline or state budget
  /// and a ladder fallback was built instead.
  bool degraded = false;

  /// Original spec.method when degraded, empty otherwise.
  std::string degraded_from;

  /// The status message of the failure that triggered the (first)
  /// fallback, empty otherwise.
  std::string fallback_reason;
};

/// Like BuildSynopsis, but when the requested method fails with
/// DeadlineExceeded or ResourceExhausted, walks a fallback ladder of
/// cheaper constructions under the same word budget instead of failing
/// (DESIGN.md §9.2):
///
///   opta / opta-reopt  ->  opta-rounded  ->  sap0  ->  equiwidth
///   DP histograms (vopt, pointopt, a0, sap0/1/2, prefixopt, *-reopt)
///                                        ->  equiwidth
///   wave-range-opt / wave-point / topbb  ->  topbb
///
/// The final rung of each ladder is built without the deadline, so an
/// already-expired deadline still yields a usable (degraded) synopsis.
/// Errors other than DeadlineExceeded/ResourceExhausted — invalid input,
/// injected faults — propagate unchanged.
Result<BuildOutcome> BuildSynopsisWithOptions(
    const SynopsisSpec& spec, const std::vector<int64_t>& data,
    const BuildOptions& options);

/// Words each stored unit (bucket / coefficient) of `method` costs, e.g.
/// 2 for "opta", 3 for "sap0", 5 for "sap1". Fails on unknown methods.
Result<int64_t> WordsPerUnit(const std::string& method);

/// Builds `spec` and compiles the result straight into the flat query
/// path (src/qpath): one call for callers that only ever serve queries
/// and never need the legacy estimator object.
Result<std::shared_ptr<const FlatSynopsis>> BuildFlatSynopsis(
    const SynopsisSpec& spec, const std::vector<int64_t>& data);

}  // namespace rangesyn

#endif  // RANGESYN_ENGINE_FACTORY_H_
