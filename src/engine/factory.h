#ifndef RANGESYN_ENGINE_FACTORY_H_
#define RANGESYN_ENGINE_FACTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/result.h"

namespace rangesyn {

/// A request to build one synopsis under a storage budget measured in
/// machine words — the accounting of the paper's Figure 1 x-axis. The
/// factory converts the budget into the method's natural parameter
/// (buckets or coefficients) using the per-method words-per-unit cost.
struct SynopsisSpec {
  /// One of KnownSynopsisMethods().
  std::string method;

  /// Storage budget in words; the built synopsis uses at most this much.
  int64_t budget_words = 16;

  /// OPT-A family only: rounding granularity for "opta-rounded"
  /// (Definition 3's parameter x).
  int64_t granularity = 2;

  /// OPT-A family only: DP state safety cap.
  uint64_t max_states = 50'000'000;
};

/// Methods the factory understands:
///   "naive", "equiwidth", "equidepth", "maxdiff", "vopt", "pointopt",
///   "a0", "sap0", "sap1", "sap2", "prefixopt", "opta", "opta-rounded",
///   "equidepth-reopt", "a0-reopt", "opta-reopt",
///   "wave-point", "topbb", "wave-range-opt".
std::vector<std::string> KnownSynopsisMethods();

/// Builds a synopsis for `data` per `spec`. The heavy constructions
/// (pseudo-polynomial OPT-A) can fail with ResourceExhausted; everything
/// else is polynomial.
Result<RangeEstimatorPtr> BuildSynopsis(const SynopsisSpec& spec,
                                        const std::vector<int64_t>& data);

/// Words each stored unit (bucket / coefficient) of `method` costs, e.g.
/// 2 for "opta", 3 for "sap0", 5 for "sap1". Fails on unknown methods.
Result<int64_t> WordsPerUnit(const std::string& method);

}  // namespace rangesyn

#endif  // RANGESYN_ENGINE_FACTORY_H_
