#ifndef RANGESYN_ENGINE_SERIALIZE_H_
#define RANGESYN_ENGINE_SERIALIZE_H_

#include <string>

#include "core/analysis_annotations.h"
#include "core/estimator.h"
#include "core/result.h"

namespace rangesyn {

/// Binary persistence for synopses. The format is a small versioned
/// little-endian encoding (magic, version, kind tag, then the concrete
/// representation's stored words — exactly the quantities the paper's
/// storage accounting charges for, plus the boundaries' metadata).
///
/// Format v2 (current writer) appends a CRC32C trailer over all preceding
/// bytes; the reader verifies it before parsing and still accepts v1
/// buffers (no trailer). See DESIGN.md §9.3 for the fault model.
///
/// Round-trip guarantee: the deserialized synopsis answers every range
/// query identically (bit-for-bit for histograms; the derived bucket
/// averages of SAP0/SAP1 are recovered from the stored summaries).
///
/// Supported concrete types: AvgHistogram (covers OPT-A / A0 / POINT-OPT
/// / equi-* / reopt), Sap0Histogram, Sap1Histogram, Sap2Histogram,
/// WeightedSap0Histogram, NaiveEstimator, WaveletSynopsis.
RANGESYN_DETERMINISTIC Result<std::string> SerializeSynopsis(const RangeEstimator& estimator);

/// Parses a buffer produced by SerializeSynopsis. Corrupt or truncated
/// inputs fail with InvalidArgument/OutOfRange, never crash.
Result<RangeEstimatorPtr> DeserializeSynopsis(std::string_view bytes);

/// Convenience file wrappers. Save writes atomically (temp file + rename +
/// fsync), so a crash mid-save leaves either the old file or the new one.
Status SaveSynopsisToFile(const RangeEstimator& estimator,
                          const std::string& path);
Result<RangeEstimatorPtr> LoadSynopsisFromFile(const std::string& path);

}  // namespace rangesyn

#endif  // RANGESYN_ENGINE_SERIALIZE_H_
