#include "engine/query_ops.h"

#include <algorithm>
#include <cmath>

#include "core/strings.h"
#include "obs/obs.h"

namespace rangesyn {
namespace {

double PrefixEstimate(const RangeEstimator& est, int64_t x) {
  return x < 1 ? 0.0 : est.EstimateRange(1, x);
}

double ClampedPoint(const RangeEstimator& est, int64_t i) {
  return std::fmax(0.0, est.EstimatePoint(i));
}

}  // namespace

Result<int64_t> EstimateQuantilePosition(const RangeEstimator& estimator,
                                         double q) {
  if (!(q > 0.0 && q < 1.0)) {
    return InvalidArgumentError("EstimateQuantilePosition: q in (0,1)");
  }
  const int64_t n = estimator.domain_size();
  const double total = PrefixEstimate(estimator, n);
  if (total <= 0.0) {
    return FailedPreconditionError(
        "EstimateQuantilePosition: estimated total mass is not positive");
  }
  const double target = q * total;
  // Binary search; exact for monotone prefix estimates (all histograms).
  // Probes are counted locally and flushed once per call.
  uint64_t probes = 1;  // the total-mass probe above
  int64_t lo = 1, hi = n;
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    ++probes;
    if (PrefixEstimate(estimator, mid) >= target) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  // Local refinement for mildly non-monotone estimators (wavelet
  // reconstructions can dip): walk left while the inequality still holds,
  // right if it does not.
  while (lo > 1 && (++probes, PrefixEstimate(estimator, lo - 1) >= target)) {
    --lo;
  }
  while (lo < n && (++probes, PrefixEstimate(estimator, lo) < target)) {
    ++lo;
  }
  RANGESYN_OBS_COUNTER_ADD("engine.query.count", probes);
  RANGESYN_OBS_COUNTER_INC("engine.query.quantile_searches");
  return lo;
}

Result<double> EstimateEquiJoinSize(const RangeEstimator& r,
                                    const RangeEstimator& s) {
  const int64_t n = std::min(r.domain_size(), s.domain_size());
  if (n < 1) return InvalidArgumentError("EstimateEquiJoinSize: empty");
  RANGESYN_OBS_SPAN("engine.query.join");
  double join = 0.0;
  for (int64_t v = 1; v <= n; ++v) {
    join += ClampedPoint(r, v) * ClampedPoint(s, v);
  }
  RANGESYN_OBS_COUNTER_ADD("engine.query.count",
                           2 * static_cast<uint64_t>(n));
  return join;
}

Result<double> ExactEquiJoinSize(const std::vector<int64_t>& r,
                                 const std::vector<int64_t>& s) {
  if (r.empty() || s.empty()) {
    return InvalidArgumentError("ExactEquiJoinSize: empty input");
  }
  const size_t n = std::min(r.size(), s.size());
  double join = 0.0;
  for (size_t v = 0; v < n; ++v) {
    join += static_cast<double>(r[v]) * static_cast<double>(s[v]);
  }
  return join;
}

Result<double> EstimateSelfJoinSize(const RangeEstimator& estimator) {
  return EstimateEquiJoinSize(estimator, estimator);
}

}  // namespace rangesyn
