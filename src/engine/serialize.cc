#include "engine/serialize.h"

#include <algorithm>
#include <memory>

#include "core/bytes.h"
#include "core/crc32c.h"
#include "core/failpoint.h"
#include "core/fs.h"
#include "core/logging.h"
#include "core/mathutil.h"
#include "core/strings.h"
#include "histogram/histogram.h"
#include "histogram/partition.h"
#include "histogram/weighted_sap0.h"
#include "obs/obs.h"
#include "wavelet/synopsis.h"

namespace rangesyn {
namespace {

constexpr uint32_t kMagic = 0x52534e31;  // "RSN1"
// v1: magic, version, kind, payload.
// v2: same, plus a little-endian CRC32C trailer over all preceding bytes.
// Writers emit v2; readers accept both (DESIGN.md §9.3).
constexpr uint8_t kVersion = 2;
constexpr size_t kHeaderSize = 6;   // magic + version + kind
constexpr size_t kTrailerSize = 4;  // CRC32C

enum class Kind : uint8_t {
  kAvgHistogram = 1,
  kSap0 = 2,
  kSap1 = 3,
  kNaive = 4,
  kWavelet = 5,
  kSap2 = 6,
  kWeightedSap0 = 7,
};

void WriteHeader(ByteWriter* w, Kind kind) {
  w->WriteU32(kMagic);
  w->WriteU8(kVersion);
  w->WriteU8(static_cast<uint8_t>(kind));
}

void WritePartition(ByteWriter* w, const Partition& p) {
  w->WriteI64(p.n());
  w->WriteI64Vector(p.ends());
}

Result<Partition> ReadPartition(ByteReader* r) {
  RANGESYN_ASSIGN_OR_RETURN(int64_t n, r->ReadI64());
  RANGESYN_ASSIGN_OR_RETURN(std::vector<int64_t> ends, r->ReadI64Vector());
  return Partition::FromEnds(n, std::move(ends));
}

Result<RangeEstimatorPtr> ReadAvgHistogram(ByteReader* r) {
  RANGESYN_ASSIGN_OR_RETURN(Partition partition, ReadPartition(r));
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> values,
                            r->ReadDoubleVector());
  RANGESYN_ASSIGN_OR_RETURN(std::string name, r->ReadString());
  RANGESYN_ASSIGN_OR_RETURN(uint8_t rounding, r->ReadU8());
  if (rounding > static_cast<uint8_t>(PieceRounding::kWhole)) {
    return InvalidArgumentError("deserialize: bad rounding mode");
  }
  RANGESYN_ASSIGN_OR_RETURN(
      AvgHistogram hist,
      AvgHistogram::Create(std::move(partition), std::move(values),
                           std::move(name),
                           static_cast<PieceRounding>(rounding)));
  return RangeEstimatorPtr(
      std::make_unique<AvgHistogram>(std::move(hist)));
}

Result<RangeEstimatorPtr> ReadSap0(ByteReader* r) {
  RANGESYN_ASSIGN_OR_RETURN(Partition partition, ReadPartition(r));
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> suff,
                            r->ReadDoubleVector());
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> pref,
                            r->ReadDoubleVector());
  RANGESYN_ASSIGN_OR_RETURN(
      Sap0Histogram hist,
      Sap0Histogram::FromSummaries(std::move(partition), std::move(suff),
                                   std::move(pref)));
  return RangeEstimatorPtr(
      std::make_unique<Sap0Histogram>(std::move(hist)));
}

Result<RangeEstimatorPtr> ReadSap1(ByteReader* r) {
  RANGESYN_ASSIGN_OR_RETURN(Partition partition, ReadPartition(r));
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> ss, r->ReadDoubleVector());
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> si, r->ReadDoubleVector());
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> ps, r->ReadDoubleVector());
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> pi, r->ReadDoubleVector());
  RANGESYN_ASSIGN_OR_RETURN(
      Sap1Histogram hist,
      Sap1Histogram::FromSummaries(std::move(partition), std::move(ss),
                                   std::move(si), std::move(ps),
                                   std::move(pi)));
  return RangeEstimatorPtr(
      std::make_unique<Sap1Histogram>(std::move(hist)));
}

Result<RangeEstimatorPtr> ReadSap2(ByteReader* r) {
  RANGESYN_ASSIGN_OR_RETURN(Partition partition, ReadPartition(r));
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> flat_suff,
                            r->ReadDoubleVector());
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> flat_pref,
                            r->ReadDoubleVector());
  if (flat_suff.size() % 3 != 0 || flat_pref.size() != flat_suff.size()) {
    return InvalidArgumentError("deserialize: bad SAP2 payload");
  }
  auto unflatten = [](const std::vector<double>& flat) {
    std::vector<Sap2Histogram::Model> models(flat.size() / 3);
    for (size_t k = 0; k < models.size(); ++k) {
      models[k] = {flat[3 * k], flat[3 * k + 1], flat[3 * k + 2]};
    }
    return models;
  };
  RANGESYN_ASSIGN_OR_RETURN(
      Sap2Histogram hist,
      Sap2Histogram::FromSummaries(std::move(partition),
                                   unflatten(flat_suff),
                                   unflatten(flat_pref)));
  return RangeEstimatorPtr(
      std::make_unique<Sap2Histogram>(std::move(hist)));
}

Result<RangeEstimatorPtr> ReadWeightedSap0(ByteReader* r) {
  RANGESYN_ASSIGN_OR_RETURN(Partition partition, ReadPartition(r));
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> suff,
                            r->ReadDoubleVector());
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> pref,
                            r->ReadDoubleVector());
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> avg,
                            r->ReadDoubleVector());
  RANGESYN_ASSIGN_OR_RETURN(
      WeightedSap0Histogram hist,
      WeightedSap0Histogram::FromSummaries(std::move(partition),
                                           std::move(suff), std::move(pref),
                                           std::move(avg)));
  return RangeEstimatorPtr(
      std::make_unique<WeightedSap0Histogram>(std::move(hist)));
}

Result<RangeEstimatorPtr> ReadNaive(ByteReader* r) {
  RANGESYN_ASSIGN_OR_RETURN(int64_t n, r->ReadI64());
  RANGESYN_ASSIGN_OR_RETURN(double avg, r->ReadDouble());
  RANGESYN_ASSIGN_OR_RETURN(NaiveEstimator est,
                            NaiveEstimator::FromAverage(n, avg));
  return RangeEstimatorPtr(
      std::make_unique<NaiveEstimator>(std::move(est)));
}

Result<RangeEstimatorPtr> ReadWavelet(ByteReader* r) {
  RANGESYN_ASSIGN_OR_RETURN(int64_t padded, r->ReadI64());
  RANGESYN_ASSIGN_OR_RETURN(int64_t n, r->ReadI64());
  RANGESYN_ASSIGN_OR_RETURN(uint8_t domain, r->ReadU8());
  if (domain > static_cast<uint8_t>(WaveletDomain::kPrefix)) {
    return InvalidArgumentError("deserialize: bad wavelet domain");
  }
  RANGESYN_ASSIGN_OR_RETURN(std::string name, r->ReadString());
  RANGESYN_ASSIGN_OR_RETURN(std::vector<int64_t> indices,
                            r->ReadI64Vector());
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> values,
                            r->ReadDoubleVector());
  if (indices.size() != values.size()) {
    return InvalidArgumentError("deserialize: wavelet payload mismatch");
  }
  std::vector<WaveletCoefficient> coeffs(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    coeffs[i] = {indices[i], values[i]};
  }
  RANGESYN_ASSIGN_OR_RETURN(
      WaveletSynopsis synopsis,
      WaveletSynopsis::Create(std::move(coeffs), padded, n,
                              static_cast<WaveletDomain>(domain),
                              std::move(name)));
  return RangeEstimatorPtr(
      std::make_unique<WaveletSynopsis>(std::move(synopsis)));
}

Result<std::string> SerializeBody(const RangeEstimator& estimator) {
  ByteWriter w;
  if (const auto* h = dynamic_cast<const AvgHistogram*>(&estimator)) {
    WriteHeader(&w, Kind::kAvgHistogram);
    WritePartition(&w, h->partition());
    w.WriteDoubleVector(h->values());
    w.WriteString(h->Name());
    w.WriteU8(static_cast<uint8_t>(h->rounding()));
    return w.Release();
  }
  if (const auto* h = dynamic_cast<const Sap0Histogram*>(&estimator)) {
    WriteHeader(&w, Kind::kSap0);
    WritePartition(&w, h->partition());
    w.WriteDoubleVector(h->suffix_values());
    w.WriteDoubleVector(h->prefix_values());
    return w.Release();
  }
  if (const auto* h = dynamic_cast<const Sap1Histogram*>(&estimator)) {
    WriteHeader(&w, Kind::kSap1);
    WritePartition(&w, h->partition());
    w.WriteDoubleVector(h->suffix_slopes());
    w.WriteDoubleVector(h->suffix_intercepts());
    w.WriteDoubleVector(h->prefix_slopes());
    w.WriteDoubleVector(h->prefix_intercepts());
    return w.Release();
  }
  if (const auto* h = dynamic_cast<const Sap2Histogram*>(&estimator)) {
    WriteHeader(&w, Kind::kSap2);
    WritePartition(&w, h->partition());
    auto flatten = [](const std::vector<Sap2Histogram::Model>& models) {
      std::vector<double> flat;
      flat.reserve(models.size() * 3);
      for (const auto& m : models) {
        flat.push_back(m.c0);
        flat.push_back(m.c1);
        flat.push_back(m.c2);
      }
      return flat;
    };
    w.WriteDoubleVector(flatten(h->suffix_models()));
    w.WriteDoubleVector(flatten(h->prefix_models()));
    return w.Release();
  }
  if (const auto* h =
          dynamic_cast<const WeightedSap0Histogram*>(&estimator)) {
    WriteHeader(&w, Kind::kWeightedSap0);
    WritePartition(&w, h->partition());
    w.WriteDoubleVector(h->suffix_values());
    w.WriteDoubleVector(h->prefix_values());
    w.WriteDoubleVector(h->averages());
    return w.Release();
  }
  if (const auto* h = dynamic_cast<const NaiveEstimator*>(&estimator)) {
    WriteHeader(&w, Kind::kNaive);
    w.WriteI64(h->domain_size());
    w.WriteDouble(h->average());
    return w.Release();
  }
  if (const auto* h = dynamic_cast<const WaveletSynopsis*>(&estimator)) {
    WriteHeader(&w, Kind::kWavelet);
    w.WriteI64(h->padded_size());
    w.WriteI64(h->domain_size());
    w.WriteU8(static_cast<uint8_t>(h->domain()));
    w.WriteString(h->Name());
    std::vector<int64_t> indices;
    std::vector<double> values;
    indices.reserve(h->coefficients().size());
    values.reserve(h->coefficients().size());
    for (const WaveletCoefficient& c : h->coefficients()) {
      indices.push_back(c.index);
      values.push_back(c.value);
    }
    w.WriteI64Vector(indices);
    w.WriteDoubleVector(values);
    return w.Release();
  }
  return UnimplementedError(
      StrCat("SerializeSynopsis: unsupported synopsis type '",
             estimator.Name(), "'"));
}

Result<std::string> SerializeSynopsisImpl(const RangeEstimator& estimator) {
  RANGESYN_ASSIGN_OR_RETURN(std::string bytes, SerializeBody(estimator));
  const uint32_t crc = Crc32c(bytes);
  ByteWriter trailer;
  trailer.WriteU32(crc);
  bytes += trailer.Release();
  return bytes;
}

#ifdef RANGESYN_AUDIT
/// RANGESYN_AUDIT self-check, run on every serialization: the bytes just
/// produced must deserialize into an estimator that (a) re-serializes to
/// the exact same bytes and (b) answers a strided sample of range queries
/// identically. Catches writer/reader drift the moment it is introduced,
/// at the call site that introduced it.
void AuditRoundTrip(const RangeEstimator& estimator,
                    const std::string& bytes) {
  Result<RangeEstimatorPtr> back = DeserializeSynopsis(bytes);
  RANGESYN_CHECK(back.ok())
      << "serialize audit: round-trip deserialize failed: "
      << back.status().message();
  const RangeEstimator& re = *back.value();
  RANGESYN_CHECK_EQ(re.domain_size(), estimator.domain_size());
  RANGESYN_CHECK_EQ(re.Name(), estimator.Name());
  Result<std::string> again = SerializeSynopsisImpl(re);
  RANGESYN_CHECK(again.ok()) << again.status().message();
  RANGESYN_CHECK(again.value() == bytes)
      << "serialize audit: re-serialization is not byte-identical for '"
      << estimator.Name() << "'";
  const int64_t n = estimator.domain_size();
  const int64_t stride = std::max<int64_t>(1, n / 8);
  for (int64_t a = 1; a <= n; a += stride) {
    for (int64_t b = a; b <= n; b += stride) {
      RANGESYN_CHECK(AlmostEqual(re.EstimateRange(a, b),
                                 estimator.EstimateRange(a, b), 1e-12,
                                 1e-9))
          << "serialize audit: estimate drift on [" << a << "," << b
          << "] for '" << estimator.Name() << "'";
    }
  }
}
#endif  // RANGESYN_AUDIT

}  // namespace

Result<std::string> SerializeSynopsis(const RangeEstimator& estimator) {
  RANGESYN_OBS_SPAN("engine.serialize");
  Result<std::string> bytes = SerializeSynopsisImpl(estimator);
  if (bytes.ok()) {
    RANGESYN_OBS_COUNTER_INC("engine.serialize.count");
    RANGESYN_OBS_COUNTER_ADD("engine.serialize.bytes",
                             bytes.value().size());
  }
#ifdef RANGESYN_AUDIT
  if (bytes.ok()) AuditRoundTrip(estimator, bytes.value());
#endif
  return bytes;
}

Result<RangeEstimatorPtr> DeserializeSynopsis(std::string_view bytes) {
  RANGESYN_OBS_SPAN("engine.deserialize");
  RANGESYN_OBS_COUNTER_INC("engine.deserialize.count");
  RANGESYN_OBS_COUNTER_ADD("engine.deserialize.bytes", bytes.size());
  // A v2 buffer carries a CRC32C trailer over everything before it; verify
  // and strip it before parsing so every later read touches only vetted
  // bytes. The version byte sits at a fixed offset, so the split needs no
  // parsing. (If corruption hit the version byte itself, either the CRC
  // check or the strict version check below rejects the buffer.)
  std::string_view body = bytes;
  if (bytes.size() >= kHeaderSize &&
      static_cast<uint8_t>(bytes[4]) >= 2) {
    if (bytes.size() < kHeaderSize + kTrailerSize) {
      return InvalidArgumentError("deserialize: truncated checksum trailer");
    }
    body = bytes.substr(0, bytes.size() - kTrailerSize);
    ByteReader tr(bytes.substr(bytes.size() - kTrailerSize));
    RANGESYN_ASSIGN_OR_RETURN(const uint32_t stored, tr.ReadU32());
    if (Crc32c(body) != stored) {
      return InvalidArgumentError(
          "deserialize: CRC32C mismatch (corrupt synopsis)");
    }
  }
  ByteReader r(body);
  RANGESYN_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kMagic) {
    return InvalidArgumentError("deserialize: bad magic");
  }
  RANGESYN_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != 1 && version != kVersion) {
    return InvalidArgumentError(
        StrCat("deserialize: unsupported version ", version));
  }
  RANGESYN_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  Result<RangeEstimatorPtr> out = InvalidArgumentError(
      StrCat("deserialize: unknown kind tag ", kind));
  switch (static_cast<Kind>(kind)) {
    case Kind::kAvgHistogram:
      out = ReadAvgHistogram(&r);
      break;
    case Kind::kSap0:
      out = ReadSap0(&r);
      break;
    case Kind::kSap1:
      out = ReadSap1(&r);
      break;
    case Kind::kSap2:
      out = ReadSap2(&r);
      break;
    case Kind::kWeightedSap0:
      out = ReadWeightedSap0(&r);
      break;
    case Kind::kNaive:
      out = ReadNaive(&r);
      break;
    case Kind::kWavelet:
      out = ReadWavelet(&r);
      break;
  }
  // Reject trailing garbage: a well-formed encoding consumes its buffer
  // exactly (this is also what catches a v2 buffer whose version byte was
  // flipped to 1 — the unstripped trailer becomes trailing garbage).
  if (out.ok() && !r.AtEnd()) {
    return InvalidArgumentError("deserialize: trailing bytes after payload");
  }
  return out;
}

Status SaveSynopsisToFile(const RangeEstimator& estimator,
                          const std::string& path) {
  RANGESYN_FAILPOINT("engine.serialize.save");
  RANGESYN_ASSIGN_OR_RETURN(std::string bytes,
                            SerializeSynopsis(estimator));
  // Atomic temp-file + rename + fsync: a crash or injected fault mid-save
  // leaves either the old file or the new one, never a torn write.
  return AtomicWriteFile(path, bytes);
}

Result<RangeEstimatorPtr> LoadSynopsisFromFile(const std::string& path) {
  RANGESYN_FAILPOINT("engine.serialize.load");
  RANGESYN_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  return DeserializeSynopsis(bytes);
}

}  // namespace rangesyn
