#include "engine/factory.h"

#include <algorithm>
#include <exception>
#include <memory>

#include "core/strings.h"
#include "histogram/builders.h"
#include "obs/obs.h"
#include "histogram/opt_a_dp.h"
#include "histogram/reopt.h"
#include "wavelet/selection.h"

namespace rangesyn {
namespace {

Result<int64_t> UnitsForBudget(int64_t budget_words, int64_t words_per_unit) {
  if (budget_words < 1) {
    return InvalidArgumentError(
        StrCat("budget_words must be >= 1, got ", budget_words));
  }
  const int64_t units = budget_words / words_per_unit;
  if (units < 1) {
    return InvalidArgumentError(
        StrCat("budget of ", budget_words, " words cannot fund one unit at ",
               words_per_unit, " words/unit"));
  }
  return units;
}

template <typename T>
RangeEstimatorPtr Wrap(T value) {
  return std::make_unique<T>(std::move(value));
}

/// Builds exactly `method` (with spec supplying the budget and OPT-A
/// knobs), recomputing the unit count for the method's own word cost so a
/// ladder fallback honors the same budget_words.
Result<RangeEstimatorPtr> BuildOneMethod(const std::string& m,
                                         const SynopsisSpec& spec,
                                         const std::vector<int64_t>& data,
                                         const Deadline& deadline,
                                         uint64_t max_states) {
  RANGESYN_ASSIGN_OR_RETURN(const int64_t words_per_unit, WordsPerUnit(m));
  RANGESYN_ASSIGN_OR_RETURN(const int64_t units,
                            UnitsForBudget(spec.budget_words, words_per_unit));

  if (m == "naive") {
    RANGESYN_ASSIGN_OR_RETURN(NaiveEstimator e, BuildNaive(data));
    return Wrap(std::move(e));
  }
  if (m == "equiwidth") {
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, BuildEquiWidth(data, units));
    return Wrap(std::move(e));
  }
  if (m == "equidepth") {
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, BuildEquiDepth(data, units));
    return Wrap(std::move(e));
  }
  if (m == "maxdiff") {
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, BuildMaxDiff(data, units));
    return Wrap(std::move(e));
  }
  if (m == "vopt") {
    RANGESYN_ASSIGN_OR_RETURN(
        AvgHistogram e,
        BuildVOptimal(data, units, PieceRounding::kPerPiece, deadline));
    return Wrap(std::move(e));
  }
  if (m == "pointopt") {
    RANGESYN_ASSIGN_OR_RETURN(
        AvgHistogram e,
        BuildPointOpt(data, units, PieceRounding::kPerPiece, deadline));
    return Wrap(std::move(e));
  }
  if (m == "a0") {
    RANGESYN_ASSIGN_OR_RETURN(
        AvgHistogram e,
        BuildA0(data, units, PieceRounding::kPerPiece, deadline));
    return Wrap(std::move(e));
  }
  if (m == "sap0") {
    RANGESYN_ASSIGN_OR_RETURN(Sap0Histogram e,
                              BuildSap0(data, units, deadline));
    return Wrap(std::move(e));
  }
  if (m == "sap1") {
    RANGESYN_ASSIGN_OR_RETURN(Sap1Histogram e,
                              BuildSap1(data, units, deadline));
    return Wrap(std::move(e));
  }
  if (m == "sap2") {
    RANGESYN_ASSIGN_OR_RETURN(Sap2Histogram e,
                              BuildSap2(data, units, deadline));
    return Wrap(std::move(e));
  }
  if (m == "prefixopt") {
    RANGESYN_ASSIGN_OR_RETURN(
        AvgHistogram e,
        BuildPrefixOpt(data, units, PieceRounding::kPerPiece, deadline));
    return Wrap(std::move(e));
  }
  if (m == "opta") {
    OptAOptions options;
    options.max_buckets = units;
    options.max_states = max_states;
    options.deadline = deadline;
    RANGESYN_ASSIGN_OR_RETURN(OptAResult r, BuildOptA(data, options));
    return Wrap(std::move(r.histogram));
  }
  if (m == "opta-rounded") {
    OptARoundedOptions options;
    options.max_buckets = units;
    options.granularity = spec.granularity;
    options.max_states = max_states;
    options.deadline = deadline;
    RANGESYN_ASSIGN_OR_RETURN(OptAResult r, BuildOptARounded(data, options));
    return Wrap(std::move(r.histogram));
  }
  if (m == "equidepth-reopt") {
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram base,
                              BuildEquiDepth(data, units));
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, Reoptimize(data, base));
    return Wrap(std::move(e));
  }
  if (m == "a0-reopt") {
    RANGESYN_ASSIGN_OR_RETURN(
        AvgHistogram base,
        BuildA0(data, units, PieceRounding::kPerPiece, deadline));
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, Reoptimize(data, base));
    return Wrap(std::move(e));
  }
  if (m == "opta-reopt") {
    OptAOptions options;
    options.max_buckets = units;
    options.max_states = max_states;
    options.deadline = deadline;
    RANGESYN_ASSIGN_OR_RETURN(OptAResult r, BuildOptA(data, options));
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e,
                              Reoptimize(data, r.histogram));
    return Wrap(std::move(e));
  }
  if (m == "wave-point") {
    RANGESYN_ASSIGN_OR_RETURN(WaveletSynopsis e,
                              BuildWavePoint(data, units, deadline));
    return Wrap(std::move(e));
  }
  if (m == "topbb") {
    RANGESYN_ASSIGN_OR_RETURN(WaveletSynopsis e,
                              BuildTopBB(data, units, deadline));
    return Wrap(std::move(e));
  }
  if (m == "wave-range-opt") {
    RANGESYN_ASSIGN_OR_RETURN(WaveletSynopsis e,
                              BuildWaveRangeOpt(data, units, deadline));
    return Wrap(std::move(e));
  }
  return InvalidArgumentError(StrCat("unknown synopsis method '", m, "'"));
}

/// As BuildOneMethod, but converts a thrown exception — e.g. an injected
/// "threadpool.task" fault escaping ParallelFor — into a clean Status, so
/// no fault can crash a caller of the factory.
Result<RangeEstimatorPtr> BuildOneMethodNoThrow(
    const std::string& m, const SynopsisSpec& spec,
    const std::vector<int64_t>& data, const Deadline& deadline,
    uint64_t max_states) {
  try {
    return BuildOneMethod(m, spec, data, deadline, max_states);
  } catch (const std::exception& e) {
    return InternalError(
        StrCat("synopsis build '", m, "' threw: ", e.what()));
  }
}

/// The degradation ladder for `method`: cheaper constructions tried in
/// order after a deadline/state-budget trip. The last rung is built
/// without the deadline (see BuildSynopsisWithOptions), so ladders end in
/// a near-linear construction that cannot itself trip.
std::vector<std::string> FallbackLadder(const std::string& m) {
  if (m == "opta" || m == "opta-reopt") {
    return {"opta-rounded", "sap0", "equiwidth"};
  }
  if (m == "opta-rounded") return {"sap0", "equiwidth"};
  if (m == "wave-range-opt" || m == "wave-point" || m == "topbb") {
    return {"topbb"};
  }
  if (m == "vopt" || m == "pointopt" || m == "a0" || m == "sap0" ||
      m == "sap1" || m == "sap2" || m == "prefixopt" || m == "a0-reopt" ||
      m == "equidepth-reopt") {
    return {"equiwidth"};
  }
  // naive / equiwidth / equidepth / maxdiff never observe the deadline.
  return {};
}

bool ShouldFallBack(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded ||
         status.code() == StatusCode::kResourceExhausted;
}

}  // namespace

std::vector<std::string> KnownSynopsisMethods() {
  return {"naive",    "equiwidth",   "equidepth",      "maxdiff",
          "vopt",     "pointopt",    "a0",             "sap0",
          "sap1",     "sap2",        "prefixopt",   "opta",        "opta-rounded",   "equidepth-reopt",
          "a0-reopt", "opta-reopt",  "wave-point",     "topbb",
          "wave-range-opt"};
}

Result<int64_t> WordsPerUnit(const std::string& method) {
  if (method == "naive") return 1;
  if (method == "sap0") return 3;
  if (method == "sap1") return 5;
  if (method == "sap2") return 7;
  if (method == "equiwidth" || method == "equidepth" || method == "maxdiff" ||
      method == "vopt" || method == "pointopt" || method == "a0" ||
      method == "prefixopt" ||
      method == "opta" || method == "opta-rounded" ||
      method == "equidepth-reopt" || method == "a0-reopt" ||
      method == "opta-reopt" || method == "wave-point" || method == "topbb" ||
      method == "wave-range-opt") {
    return 2;
  }
  return InvalidArgumentError(StrCat("unknown synopsis method '", method,
                                     "'"));
}

Result<RangeEstimatorPtr> BuildSynopsis(const SynopsisSpec& spec,
                                        const std::vector<int64_t>& data) {
  RANGESYN_OBS_SPAN("engine.build");
  RANGESYN_OBS_COUNTER_INC("engine.build.count");
  RANGESYN_OBS_GAUGE_SET("engine.build.last_n",
                         static_cast<int64_t>(data.size()));
  return BuildOneMethodNoThrow(spec.method, spec, data, Deadline(),
                               spec.max_states);
}

Result<std::shared_ptr<const FlatSynopsis>> BuildFlatSynopsis(
    const SynopsisSpec& spec, const std::vector<int64_t>& data) {
  RANGESYN_ASSIGN_OR_RETURN(RangeEstimatorPtr estimator,
                            BuildSynopsis(spec, data));
  return FlatSynopsis::Compile(*estimator);
}

Result<BuildOutcome> BuildSynopsisWithOptions(
    const SynopsisSpec& spec, const std::vector<int64_t>& data,
    const BuildOptions& options) {
  RANGESYN_OBS_SPAN("engine.build");
  RANGESYN_OBS_COUNTER_INC("engine.build.count");
  RANGESYN_OBS_GAUGE_SET("engine.build.last_n",
                         static_cast<int64_t>(data.size()));
  const uint64_t max_states =
      options.max_states != 0 ? options.max_states : spec.max_states;

  Result<RangeEstimatorPtr> first = BuildOneMethodNoThrow(
      spec.method, spec, data, options.deadline, max_states);
  if (first.ok()) {
    BuildOutcome out;
    out.estimator = std::move(first.value());
    out.built_method = spec.method;
    return out;
  }
  if (!ShouldFallBack(first.status())) return first.status();

  const std::vector<std::string> ladder = FallbackLadder(spec.method);
  const std::string reason(first.status().message());
  RANGESYN_LOG_EVENT(Warning, "engine.build.fallback_start")
      .Arg("method", spec.method)
      .Arg("ladder_len", static_cast<int64_t>(ladder.size()))
      .Arg("reason", reason);
  Status last = first.status();
  for (size_t rung = 0; rung < ladder.size(); ++rung) {
    // The final rung runs deadline-free: an already-expired deadline must
    // still produce a usable synopsis, and every ladder ends in a
    // near-linear construction whose cost is negligible by design.
    const bool final_rung = rung + 1 == ladder.size();
    Result<RangeEstimatorPtr> attempt = BuildOneMethodNoThrow(
        ladder[rung], spec, data,
        final_rung ? Deadline() : options.deadline, max_states);
    if (attempt.ok()) {
      RANGESYN_OBS_COUNTER_INC("engine.build.degraded");
      RANGESYN_LOG_EVENT(Warning, "engine.build.degraded")
          .Arg("from", spec.method)
          .Arg("to", ladder[rung])
          .Arg("rung", static_cast<int64_t>(rung))
          .Arg("n", static_cast<int64_t>(data.size()))
          .Arg("reason", reason);
#if RANGESYN_OBS_ENABLED
      // A degraded build is trigger class 3 (flight.h): capture the lead-up
      // — deadline expiries, per-rung failures — plus a metrics snapshot.
      ::rangesyn::obs::FlightRecorder::Get().AutoDump("build_degraded");
#endif
      BuildOutcome out;
      out.estimator = std::move(attempt.value());
      out.built_method = ladder[rung];
      out.degraded = true;
      out.degraded_from = spec.method;
      out.fallback_reason = reason;
      return out;
    }
    if (!ShouldFallBack(attempt.status())) return attempt.status();
    last = attempt.status();
  }
  return last;
}

}  // namespace rangesyn
