#include "engine/factory.h"

#include <algorithm>
#include <memory>

#include "core/strings.h"
#include "histogram/builders.h"
#include "obs/obs.h"
#include "histogram/opt_a_dp.h"
#include "histogram/reopt.h"
#include "wavelet/selection.h"

namespace rangesyn {
namespace {

int64_t UnitsForBudget(int64_t budget_words, int64_t words_per_unit) {
  return std::max<int64_t>(1, budget_words / words_per_unit);
}

template <typename T>
RangeEstimatorPtr Wrap(T value) {
  return std::make_unique<T>(std::move(value));
}

}  // namespace

std::vector<std::string> KnownSynopsisMethods() {
  return {"naive",    "equiwidth",   "equidepth",      "maxdiff",
          "vopt",     "pointopt",    "a0",             "sap0",
          "sap1",     "sap2",        "prefixopt",   "opta",        "opta-rounded",   "equidepth-reopt",
          "a0-reopt", "opta-reopt",  "wave-point",     "topbb",
          "wave-range-opt"};
}

Result<int64_t> WordsPerUnit(const std::string& method) {
  if (method == "naive") return 1;
  if (method == "sap0") return 3;
  if (method == "sap1") return 5;
  if (method == "sap2") return 7;
  if (method == "equiwidth" || method == "equidepth" || method == "maxdiff" ||
      method == "vopt" || method == "pointopt" || method == "a0" ||
      method == "prefixopt" ||
      method == "opta" || method == "opta-rounded" ||
      method == "equidepth-reopt" || method == "a0-reopt" ||
      method == "opta-reopt" || method == "wave-point" || method == "topbb" ||
      method == "wave-range-opt") {
    return 2;
  }
  return InvalidArgumentError(StrCat("unknown synopsis method '", method,
                                     "'"));
}

Result<RangeEstimatorPtr> BuildSynopsis(const SynopsisSpec& spec,
                                        const std::vector<int64_t>& data) {
  RANGESYN_OBS_SPAN("engine.build");
  RANGESYN_OBS_COUNTER_INC("engine.build.count");
  RANGESYN_OBS_GAUGE_SET("engine.build.last_n",
                         static_cast<int64_t>(data.size()));
  RANGESYN_ASSIGN_OR_RETURN(const int64_t words_per_unit,
                            WordsPerUnit(spec.method));
  const int64_t units = UnitsForBudget(spec.budget_words, words_per_unit);
  const std::string& m = spec.method;

  if (m == "naive") {
    RANGESYN_ASSIGN_OR_RETURN(NaiveEstimator e, BuildNaive(data));
    return Wrap(std::move(e));
  }
  if (m == "equiwidth") {
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, BuildEquiWidth(data, units));
    return Wrap(std::move(e));
  }
  if (m == "equidepth") {
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, BuildEquiDepth(data, units));
    return Wrap(std::move(e));
  }
  if (m == "maxdiff") {
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, BuildMaxDiff(data, units));
    return Wrap(std::move(e));
  }
  if (m == "vopt") {
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, BuildVOptimal(data, units));
    return Wrap(std::move(e));
  }
  if (m == "pointopt") {
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, BuildPointOpt(data, units));
    return Wrap(std::move(e));
  }
  if (m == "a0") {
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, BuildA0(data, units));
    return Wrap(std::move(e));
  }
  if (m == "sap0") {
    RANGESYN_ASSIGN_OR_RETURN(Sap0Histogram e, BuildSap0(data, units));
    return Wrap(std::move(e));
  }
  if (m == "sap1") {
    RANGESYN_ASSIGN_OR_RETURN(Sap1Histogram e, BuildSap1(data, units));
    return Wrap(std::move(e));
  }
  if (m == "sap2") {
    RANGESYN_ASSIGN_OR_RETURN(Sap2Histogram e, BuildSap2(data, units));
    return Wrap(std::move(e));
  }
  if (m == "prefixopt") {
    RANGESYN_ASSIGN_OR_RETURN(
        AvgHistogram e,
        BuildPrefixOpt(data, units, PieceRounding::kPerPiece));
    return Wrap(std::move(e));
  }
  if (m == "opta") {
    OptAOptions options;
    options.max_buckets = units;
    options.max_states = spec.max_states;
    RANGESYN_ASSIGN_OR_RETURN(OptAResult r, BuildOptA(data, options));
    return Wrap(std::move(r.histogram));
  }
  if (m == "opta-rounded") {
    OptARoundedOptions options;
    options.max_buckets = units;
    options.granularity = spec.granularity;
    options.max_states = spec.max_states;
    RANGESYN_ASSIGN_OR_RETURN(OptAResult r, BuildOptARounded(data, options));
    return Wrap(std::move(r.histogram));
  }
  if (m == "equidepth-reopt") {
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram base,
                              BuildEquiDepth(data, units));
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, Reoptimize(data, base));
    return Wrap(std::move(e));
  }
  if (m == "a0-reopt") {
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram base, BuildA0(data, units));
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e, Reoptimize(data, base));
    return Wrap(std::move(e));
  }
  if (m == "opta-reopt") {
    OptAOptions options;
    options.max_buckets = units;
    options.max_states = spec.max_states;
    RANGESYN_ASSIGN_OR_RETURN(OptAResult r, BuildOptA(data, options));
    RANGESYN_ASSIGN_OR_RETURN(AvgHistogram e,
                              Reoptimize(data, r.histogram));
    return Wrap(std::move(e));
  }
  if (m == "wave-point") {
    RANGESYN_ASSIGN_OR_RETURN(WaveletSynopsis e,
                              BuildWavePoint(data, units));
    return Wrap(std::move(e));
  }
  if (m == "topbb") {
    RANGESYN_ASSIGN_OR_RETURN(WaveletSynopsis e, BuildTopBB(data, units));
    return Wrap(std::move(e));
  }
  if (m == "wave-range-opt") {
    RANGESYN_ASSIGN_OR_RETURN(WaveletSynopsis e,
                              BuildWaveRangeOpt(data, units));
    return Wrap(std::move(e));
  }
  return InvalidArgumentError(StrCat("unknown synopsis method '", m, "'"));
}

}  // namespace rangesyn
