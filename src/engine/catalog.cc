#include "engine/catalog.h"

#include <algorithm>
#include <utility>

#include "core/bytes.h"
#include "core/crc32c.h"
#include "core/failpoint.h"
#include "core/fs.h"
#include "core/strings.h"
#include "engine/serialize.h"
#include "obs/obs.h"

namespace rangesyn {

SynopsisCatalog::SynopsisCatalog(SynopsisCatalog&& other) noexcept {
  MutexLock other_lock(other.mu_);
  MutexLock self_lock(mu_);
  entries_ = std::move(other.entries_);
}

SynopsisCatalog& SynopsisCatalog::operator=(
    SynopsisCatalog&& other) noexcept {
  if (this != &other) {
    // Self first, then source: a freshly constructed target is never
    // contended, and moves are excluded from concurrent use anyway (see
    // the class comment) — the locks here keep the guarded-by contract
    // honest rather than order a cross-catalog protocol.
    MutexLock self_lock(mu_);
    MutexLock other_lock(other.mu_);
    entries_ = std::move(other.entries_);
  }
  return *this;
}

Status SynopsisCatalog::RegisterColumn(const std::string& key,
                                       const Column& column,
                                       const SynopsisSpec& spec) {
  RANGESYN_ASSIGN_OR_RETURN(AttributeDistribution dist,
                            BuildDistribution(column));
  return RegisterDistribution(key, std::move(dist), spec);
}

Status SynopsisCatalog::RegisterDistribution(const std::string& key,
                                             AttributeDistribution dist,
                                             const SynopsisSpec& spec) {
  {
    // Fast-fail on duplicates before the build; re-checked at insert.
    MutexLock lock(mu_);
    if (entries_.contains(key)) {
      return AlreadyExistsError(StrCat("catalog entry '", key, "' exists"));
    }
  }
  // The synopsis build is the expensive part; run it outside the lock so
  // concurrent registrations of different keys build in parallel.
  RANGESYN_ASSIGN_OR_RETURN(RangeEstimatorPtr estimator,
                            BuildSynopsis(spec, dist.counts));
  Entry entry;
  entry.domain_lo = dist.domain_lo;
  entry.domain_size = dist.domain_size();
  entry.method = spec.method;
  entry.estimator = std::move(estimator);
  // The raw counts are not retained — the synopsis is the point.
  entry.distribution.domain_lo = dist.domain_lo;
  MutexLock lock(mu_);
  if (!entries_.emplace(key, std::move(entry)).second) {
    return AlreadyExistsError(StrCat("catalog entry '", key, "' exists"));
  }
  return OkStatus();
}

Result<const SynopsisCatalog::Entry*> SynopsisCatalog::FindLocked(
    const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return NotFoundError(StrCat("no catalog entry '", key, "'"));
  }
  return &it->second;
}

Result<std::shared_ptr<const FlatSynopsis>> SynopsisCatalog::FlatView(
    const std::string& key) {
  MutexLock lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return NotFoundError(StrCat("no catalog entry '", key, "'"));
  }
  Entry& entry = it->second;
  if (entry.flat == nullptr) {
    RANGESYN_ASSIGN_OR_RETURN(entry.flat,
                              FlatSynopsis::Compile(*entry.estimator));
  }
  return entry.flat;
}

Status SynopsisCatalog::Evict(const std::string& key) {
  // Outstanding FlatView holders keep their (shared) storage alive; this
  // only drops the catalog's references, so later lookups fail NotFound.
  MutexLock lock(mu_);
  if (entries_.erase(key) == 0) {
    return NotFoundError(StrCat("no catalog entry '", key, "'"));
  }
  return OkStatus();
}

Result<double> SynopsisCatalog::EstimateCountBetweenLocked(
    const std::string& key, int64_t lo, int64_t hi) const {
  if (hi < lo) return InvalidArgumentError("EstimateCountBetween: hi < lo");
  RANGESYN_ASSIGN_OR_RETURN(const Entry* entry, FindLocked(key));
  // Clip the value range to the registered domain.
  const int64_t d_lo = entry->domain_lo;
  const int64_t d_hi = entry->domain_lo + entry->domain_size - 1;
  const int64_t c_lo = std::max(lo, d_lo);
  const int64_t c_hi = std::min(hi, d_hi);
  if (c_lo > c_hi) return 0.0;
  const int64_t a = c_lo - d_lo + 1;
  const int64_t b = c_hi - d_lo + 1;
  return entry->estimator->EstimateRange(a, b);
}

Result<double> SynopsisCatalog::EstimateCountBetween(const std::string& key,
                                                     int64_t lo,
                                                     int64_t hi) const {
  MutexLock lock(mu_);
  return EstimateCountBetweenLocked(key, lo, hi);
}

Result<double> SynopsisCatalog::EstimateEquals(const std::string& key,
                                               int64_t v) const {
  return EstimateCountBetween(key, v, v);
}

Result<double> SynopsisCatalog::EstimateSelectivityLocked(
    const std::string& key, int64_t lo, int64_t hi) const {
  RANGESYN_ASSIGN_OR_RETURN(const Entry* entry, FindLocked(key));
  const int64_t d_lo = entry->domain_lo;
  const int64_t d_hi = entry->domain_lo + entry->domain_size - 1;
  RANGESYN_ASSIGN_OR_RETURN(double total,
                            EstimateCountBetweenLocked(key, d_lo, d_hi));
  if (total <= 0.0) return 0.0;
  RANGESYN_ASSIGN_OR_RETURN(double hits,
                            EstimateCountBetweenLocked(key, lo, hi));
  return std::clamp(hits / total, 0.0, 1.0);
}

Result<double> SynopsisCatalog::EstimateSelectivity(const std::string& key,
                                                    int64_t lo,
                                                    int64_t hi) const {
  MutexLock lock(mu_);
  return EstimateSelectivityLocked(key, lo, hi);
}

Result<double> SynopsisCatalog::EstimateConjunctionSelectivity(
    const std::vector<Predicate>& predicates) const {
  if (predicates.empty()) {
    return InvalidArgumentError(
        "EstimateConjunctionSelectivity: empty conjunction");
  }
  MutexLock lock(mu_);
  double selectivity = 1.0;
  for (const Predicate& p : predicates) {
    RANGESYN_ASSIGN_OR_RETURN(double s,
                              EstimateSelectivityLocked(p.key, p.lo, p.hi));
    selectivity *= s;
  }
  return selectivity;
}

Result<int64_t> SynopsisCatalog::StorageWords(const std::string& key) const {
  MutexLock lock(mu_);
  RANGESYN_ASSIGN_OR_RETURN(const Entry* entry, FindLocked(key));
  return entry->estimator->StorageWords();
}

int64_t SynopsisCatalog::TotalStorageWords() const {
  MutexLock lock(mu_);
  int64_t total = 0;
  for (const auto& [key, entry] : entries_) {
    total += entry.estimator->StorageWords();
  }
  return total;
}

namespace {

constexpr uint32_t kCatalogMagic = 0x52534343;  // "RSCC"
// v1: magic, version, count, then inline entries (no checksums).
// v2: magic, version, count, then per entry a length-prefixed blob
//     followed by its own CRC32C, and finally a CRC32C trailer over the
//     whole preceding buffer. The per-entry checksums are what make
//     quarantine possible: damage stays localized to one blob.
constexpr uint8_t kCatalogVersion = 2;
constexpr size_t kCatalogTrailerSize = 4;

}  // namespace

Result<std::string> SynopsisCatalog::Serialize() const {
  MutexLock lock(mu_);
  ByteWriter w;
  w.WriteU32(kCatalogMagic);
  w.WriteU8(kCatalogVersion);
  w.WriteU32(static_cast<uint32_t>(entries_.size()));
  for (const auto& [key, entry] : entries_) {
    ByteWriter ew;
    ew.WriteString(key);
    ew.WriteI64(entry.domain_lo);
    ew.WriteI64(entry.domain_size);
    ew.WriteString(entry.method);
    RANGESYN_ASSIGN_OR_RETURN(std::string synopsis,
                              SerializeSynopsis(*entry.estimator));
    ew.WriteString(synopsis);
    const std::string blob = ew.Release();
    w.WriteString(blob);
    w.WriteU32(Crc32c(blob));
  }
  std::string body = w.Release();
  ByteWriter trailer;
  trailer.WriteU32(Crc32c(body));
  body += trailer.Release();
  return body;
}

namespace {

/// Parses one v2 entry blob (already CRC-verified in strict mode).
Result<std::pair<std::string, std::string>> ReadEntryBlobKey(
    std::string_view blob) {
  ByteReader er(blob);
  RANGESYN_ASSIGN_OR_RETURN(std::string key, er.ReadString());
  return std::make_pair(std::move(key), std::string());
}

}  // namespace

Result<SynopsisCatalog> SynopsisCatalog::Deserialize(
    std::string_view bytes) {
  return DeserializeWithReport(bytes, nullptr);
}

Result<SynopsisCatalog> SynopsisCatalog::DeserializeWithReport(
    std::string_view bytes, LoadReport* report) {
  // Null report <=> strict mode: the first entry-level failure rejects the
  // whole buffer instead of quarantining it.
  const bool strict = report == nullptr;
  std::string_view body = bytes;
  bool v2 = false;
  if (bytes.size() >= 9 && static_cast<uint8_t>(bytes[4]) >= 2) {
    v2 = true;
    if (bytes.size() < 9 + kCatalogTrailerSize) {
      return InvalidArgumentError("catalog deserialize: truncated trailer");
    }
    body = bytes.substr(0, bytes.size() - kCatalogTrailerSize);
    ByteReader tr(bytes.substr(bytes.size() - kCatalogTrailerSize));
    RANGESYN_ASSIGN_OR_RETURN(const uint32_t stored, tr.ReadU32());
    if (Crc32c(body) != stored && strict) {
      return InvalidArgumentError(
          "catalog deserialize: CRC32C mismatch (corrupt catalog)");
    }
    // Lenient mode proceeds on a trailer mismatch: the per-entry checksums
    // below localize the damage to individual blobs.
  }
  ByteReader r(body);
  RANGESYN_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kCatalogMagic) {
    return InvalidArgumentError("catalog deserialize: bad magic");
  }
  RANGESYN_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != 1 && version != kCatalogVersion) {
    return InvalidArgumentError("catalog deserialize: bad version");
  }
  RANGESYN_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  if (report != nullptr) {
    report->entries_total = static_cast<int64_t>(count);
    report->entries_loaded = 0;
    report->quarantined.clear();
  }
  SynopsisCatalog catalog;
  uint64_t quarantined = 0;
  for (uint32_t i = 0; i < count; ++i) {
    std::string key;
    std::string blob_storage;  // v2 only; keeps the view below alive
    // v1 entries are inline: parse them from the unread suffix and hand
    // the advanced reader back to `r` on success.
    std::string_view entry_bytes = body.substr(body.size() - r.remaining());
    Status entry_status = OkStatus();
    if (v2) {
      // The framing (length prefix + CRC word) must parse even when the
      // blob inside is garbage; a framing failure is unrecoverable
      // because the stream position is lost.
      RANGESYN_ASSIGN_OR_RETURN(blob_storage, r.ReadString());
      RANGESYN_ASSIGN_OR_RETURN(const uint32_t stored, r.ReadU32());
      entry_bytes = blob_storage;
      if (Crc32c(blob_storage) != stored) {
        entry_status = InvalidArgumentError(
            "catalog entry: CRC32C mismatch (corrupt entry)");
        // Best-effort name for the report; garbage keys are acceptable.
        if (Result<std::pair<std::string, std::string>> k =
                ReadEntryBlobKey(blob_storage);
            k.ok()) {
          key = std::move(k.value().first);
        }
      }
    }
    Entry entry;
    if (entry_status.ok()) {
      ByteReader er(entry_bytes);
      const auto parse = [&]() -> Status {
        RANGESYN_ASSIGN_OR_RETURN(key, er.ReadString());
        RANGESYN_ASSIGN_OR_RETURN(entry.domain_lo, er.ReadI64());
        RANGESYN_ASSIGN_OR_RETURN(entry.domain_size, er.ReadI64());
        RANGESYN_ASSIGN_OR_RETURN(entry.method, er.ReadString());
        RANGESYN_ASSIGN_OR_RETURN(std::string synopsis, er.ReadString());
        RANGESYN_ASSIGN_OR_RETURN(entry.estimator,
                                  DeserializeSynopsis(synopsis));
        if (entry.domain_size != entry.estimator->domain_size()) {
          return InvalidArgumentError(StrCat(
              "catalog deserialize: domain mismatch for '", key, "'"));
        }
        if (v2 && !er.AtEnd()) {
          return InvalidArgumentError(
              "catalog entry: trailing bytes in entry blob");
        }
        return OkStatus();
      };
      entry_status = parse();
      if (!v2 && entry_status.ok()) {
        // v1 entries are inline: re-sync the shared reader past what the
        // entry consumed. (On failure the v1 stream position is lost, so
        // v1 is always strict.)
        r = std::move(er);
      }
    }
    if (entry_status.ok()) {
      entry.distribution.domain_lo = entry.domain_lo;
      // `catalog` is function-local, but its map is guarded: take its
      // lock for the insert so the capability contract holds everywhere.
      MutexLock lock(catalog.mu_);
      if (!catalog.entries_.emplace(key, std::move(entry)).second) {
        entry_status =
            InvalidArgumentError(StrCat("duplicate catalog key '", key, "'"));
      }
    }
    if (!entry_status.ok()) {
      if (strict || !v2) return entry_status;
      ++quarantined;
      RANGESYN_LOG_EVENT(Warning, "engine.catalog.entry_quarantined")
          .Arg("index", static_cast<int64_t>(i))
          .Arg("key", key)
          .Arg("reason", entry_status.message());
      report->quarantined.push_back(
          {std::move(key), std::string(entry_status.message())});
      continue;
    }
    if (report != nullptr) ++report->entries_loaded;
  }
  if (!r.AtEnd()) {
    if (strict) {
      return InvalidArgumentError(
          "catalog deserialize: trailing bytes after entries");
    }
    report->quarantined.push_back(
        {std::string(), "trailing bytes after entries"});
  }
  RANGESYN_OBS_COUNTER_ADD("engine.catalog.quarantined", quarantined);
#if RANGESYN_OBS_ENABLED
  if (quarantined > 0) {
    // Quarantine is trigger class 4 (flight.h): one dump per load carrying
    // the per-entry quarantine events above plus a metrics snapshot.
    ::rangesyn::obs::FlightRecorder::Get().AutoDump("catalog_quarantine");
  }
#endif
  return catalog;
}

Status SynopsisCatalog::SaveToFile(const std::string& path) const {
  RANGESYN_FAILPOINT("engine.catalog.save");
  RANGESYN_ASSIGN_OR_RETURN(std::string bytes, Serialize());
  return AtomicWriteFile(path, bytes);
}

Result<SynopsisCatalog> SynopsisCatalog::LoadFromFile(
    const std::string& path) {
  return LoadFromFileWithReport(path, nullptr);
}

Result<SynopsisCatalog> SynopsisCatalog::LoadFromFileWithReport(
    const std::string& path, LoadReport* report) {
  RANGESYN_FAILPOINT("engine.catalog.load");
  RANGESYN_ASSIGN_OR_RETURN(const std::string bytes, ReadFileToString(path));
  return DeserializeWithReport(bytes, report);
}

std::vector<SynopsisCatalog::EntryInfo> SynopsisCatalog::ListEntries() const {
  MutexLock lock(mu_);
  std::vector<EntryInfo> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back({key, entry.method, entry.estimator->StorageWords(),
                   entry.domain_lo,
                   entry.domain_lo + entry.domain_size - 1});
  }
  return out;
}

}  // namespace rangesyn
