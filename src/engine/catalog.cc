#include "engine/catalog.h"

#include <algorithm>
#include <fstream>

#include "core/bytes.h"
#include "core/strings.h"
#include "engine/serialize.h"

namespace rangesyn {

Status SynopsisCatalog::RegisterColumn(const std::string& key,
                                       const Column& column,
                                       const SynopsisSpec& spec) {
  RANGESYN_ASSIGN_OR_RETURN(AttributeDistribution dist,
                            BuildDistribution(column));
  return RegisterDistribution(key, std::move(dist), spec);
}

Status SynopsisCatalog::RegisterDistribution(const std::string& key,
                                             AttributeDistribution dist,
                                             const SynopsisSpec& spec) {
  if (entries_.contains(key)) {
    return AlreadyExistsError(StrCat("catalog entry '", key, "' exists"));
  }
  RANGESYN_ASSIGN_OR_RETURN(RangeEstimatorPtr estimator,
                            BuildSynopsis(spec, dist.counts));
  Entry entry;
  entry.domain_lo = dist.domain_lo;
  entry.domain_size = dist.domain_size();
  entry.method = spec.method;
  entry.estimator = std::move(estimator);
  // The raw counts are not retained — the synopsis is the point.
  entry.distribution.domain_lo = dist.domain_lo;
  entries_.emplace(key, std::move(entry));
  return OkStatus();
}

Result<const SynopsisCatalog::Entry*> SynopsisCatalog::Find(
    const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    return NotFoundError(StrCat("no catalog entry '", key, "'"));
  }
  return &it->second;
}

Result<double> SynopsisCatalog::EstimateCountBetween(const std::string& key,
                                                     int64_t lo,
                                                     int64_t hi) const {
  if (hi < lo) return InvalidArgumentError("EstimateCountBetween: hi < lo");
  RANGESYN_ASSIGN_OR_RETURN(const Entry* entry, Find(key));
  // Clip the value range to the registered domain.
  const int64_t d_lo = entry->domain_lo;
  const int64_t d_hi = entry->domain_lo + entry->domain_size - 1;
  const int64_t c_lo = std::max(lo, d_lo);
  const int64_t c_hi = std::min(hi, d_hi);
  if (c_lo > c_hi) return 0.0;
  const int64_t a = c_lo - d_lo + 1;
  const int64_t b = c_hi - d_lo + 1;
  return entry->estimator->EstimateRange(a, b);
}

Result<double> SynopsisCatalog::EstimateEquals(const std::string& key,
                                               int64_t v) const {
  return EstimateCountBetween(key, v, v);
}

Result<double> SynopsisCatalog::EstimateSelectivity(const std::string& key,
                                                    int64_t lo,
                                                    int64_t hi) const {
  RANGESYN_ASSIGN_OR_RETURN(const Entry* entry, Find(key));
  const int64_t d_lo = entry->domain_lo;
  const int64_t d_hi = entry->domain_lo + entry->domain_size - 1;
  RANGESYN_ASSIGN_OR_RETURN(double total,
                            EstimateCountBetween(key, d_lo, d_hi));
  if (total <= 0.0) return 0.0;
  RANGESYN_ASSIGN_OR_RETURN(double hits, EstimateCountBetween(key, lo, hi));
  return std::clamp(hits / total, 0.0, 1.0);
}

Result<double> SynopsisCatalog::EstimateConjunctionSelectivity(
    const std::vector<Predicate>& predicates) const {
  if (predicates.empty()) {
    return InvalidArgumentError(
        "EstimateConjunctionSelectivity: empty conjunction");
  }
  double selectivity = 1.0;
  for (const Predicate& p : predicates) {
    RANGESYN_ASSIGN_OR_RETURN(double s,
                              EstimateSelectivity(p.key, p.lo, p.hi));
    selectivity *= s;
  }
  return selectivity;
}

Result<int64_t> SynopsisCatalog::StorageWords(const std::string& key) const {
  RANGESYN_ASSIGN_OR_RETURN(const Entry* entry, Find(key));
  return entry->estimator->StorageWords();
}

int64_t SynopsisCatalog::TotalStorageWords() const {
  int64_t total = 0;
  for (const auto& [key, entry] : entries_) {
    total += entry.estimator->StorageWords();
  }
  return total;
}

namespace {
constexpr uint32_t kCatalogMagic = 0x52534343;  // "RSCC"
constexpr uint8_t kCatalogVersion = 1;
}  // namespace

Result<std::string> SynopsisCatalog::Serialize() const {
  ByteWriter w;
  w.WriteU32(kCatalogMagic);
  w.WriteU8(kCatalogVersion);
  w.WriteU32(static_cast<uint32_t>(entries_.size()));
  for (const auto& [key, entry] : entries_) {
    w.WriteString(key);
    w.WriteI64(entry.domain_lo);
    w.WriteI64(entry.domain_size);
    w.WriteString(entry.method);
    RANGESYN_ASSIGN_OR_RETURN(std::string synopsis,
                              SerializeSynopsis(*entry.estimator));
    w.WriteString(synopsis);
  }
  return w.Release();
}

Result<SynopsisCatalog> SynopsisCatalog::Deserialize(
    std::string_view bytes) {
  ByteReader r(bytes);
  RANGESYN_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != kCatalogMagic) {
    return InvalidArgumentError("catalog deserialize: bad magic");
  }
  RANGESYN_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != kCatalogVersion) {
    return InvalidArgumentError("catalog deserialize: bad version");
  }
  RANGESYN_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  SynopsisCatalog catalog;
  for (uint32_t i = 0; i < count; ++i) {
    RANGESYN_ASSIGN_OR_RETURN(std::string key, r.ReadString());
    Entry entry;
    RANGESYN_ASSIGN_OR_RETURN(entry.domain_lo, r.ReadI64());
    RANGESYN_ASSIGN_OR_RETURN(entry.domain_size, r.ReadI64());
    RANGESYN_ASSIGN_OR_RETURN(entry.method, r.ReadString());
    RANGESYN_ASSIGN_OR_RETURN(std::string synopsis, r.ReadString());
    RANGESYN_ASSIGN_OR_RETURN(entry.estimator,
                              DeserializeSynopsis(synopsis));
    if (entry.domain_size != entry.estimator->domain_size()) {
      return InvalidArgumentError(
          StrCat("catalog deserialize: domain mismatch for '", key, "'"));
    }
    entry.distribution.domain_lo = entry.domain_lo;
    if (!catalog.entries_.emplace(std::move(key), std::move(entry)).second) {
      return InvalidArgumentError("catalog deserialize: duplicate key");
    }
  }
  return catalog;
}

Status SynopsisCatalog::SaveToFile(const std::string& path) const {
  RANGESYN_ASSIGN_OR_RETURN(std::string bytes, Serialize());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InternalError(StrCat("cannot open '", path, "'"));
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return InternalError(StrCat("write to '", path, "' failed"));
  return OkStatus();
}

Result<SynopsisCatalog> SynopsisCatalog::LoadFromFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError(StrCat("cannot open '", path, "'"));
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return Deserialize(bytes);
}

std::vector<SynopsisCatalog::EntryInfo> SynopsisCatalog::ListEntries() const {
  std::vector<EntryInfo> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.push_back({key, entry.method, entry.estimator->StorageWords(),
                   entry.domain_lo,
                   entry.domain_lo + entry.domain_size - 1});
  }
  return out;
}

}  // namespace rangesyn
