#ifndef RANGESYN_ENGINE_QUERY_OPS_H_
#define RANGESYN_ENGINE_QUERY_OPS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/estimator.h"
#include "core/result.h"

namespace rangesyn {

/// Higher-level query estimates derived from range-sum synopses — the
/// operations a query optimizer or AQP layer actually asks for, layered
/// on the paper's primitives.

/// Estimated position of the `q`-quantile (0 < q < 1): the smallest
/// 1-based position x whose estimated prefix mass reaches q * (estimated
/// total mass). Found by binary search on the estimated prefix function;
/// for synopses whose prefix estimates are non-monotone (wavelets can
/// locally dip) the result is refined by a local scan, so the returned
/// position always satisfies the defining inequality against the
/// synopsis' own estimates.
RANGESYN_HOT_PATH Result<int64_t> EstimateQuantilePosition(const RangeEstimator& estimator,
                                         double q);

/// Estimated equi-join size |R join S on value| = Σ_v f_R(v) * f_S(v),
/// computed from the two synopses' point estimates over the shared
/// 1..min(nR, nS) domain. Point estimates below zero are clamped (counts
/// cannot be negative). O(n log B).
RANGESYN_HOT_PATH Result<double> EstimateEquiJoinSize(const RangeEstimator& r,
                                    const RangeEstimator& s);

/// Exact join size from two frequency vectors (the oracle the estimate is
/// judged against in tests/benchmarks).
Result<double> ExactEquiJoinSize(const std::vector<int64_t>& r,
                                 const std::vector<int64_t>& s);

/// Estimated self-join size Σ_v f(v)² — the classical "second frequency
/// moment" that drives skew detection.
RANGESYN_HOT_PATH Result<double> EstimateSelfJoinSize(const RangeEstimator& estimator);

}  // namespace rangesyn

#endif  // RANGESYN_ENGINE_QUERY_OPS_H_
