#include "engine/table.h"

#include <algorithm>

#include "core/strings.h"

namespace rangesyn {

void Column::AppendBatch(const std::vector<int64_t>& values) {
  values_.insert(values_.end(), values.begin(), values.end());
}

int64_t Column::CountRange(int64_t lo, int64_t hi) const {
  int64_t count = 0;
  for (int64_t v : values_) {
    if (v >= lo && v <= hi) ++count;
  }
  return count;
}

int64_t Column::SumRange(int64_t lo, int64_t hi) const {
  int64_t sum = 0;
  for (int64_t v : values_) {
    if (v >= lo && v <= hi) sum += v;
  }
  return sum;
}

Result<std::pair<int64_t, int64_t>> Column::ValueBounds() const {
  if (values_.empty()) {
    return FailedPreconditionError(
        StrCat("column '", name_, "' is empty"));
  }
  const auto [lo, hi] = std::minmax_element(values_.begin(), values_.end());
  return std::make_pair(*lo, *hi);
}

int64_t AttributeDistribution::PositionOf(int64_t v) const {
  const int64_t pos = v - domain_lo + 1;
  return std::clamp<int64_t>(pos, 1, domain_size());
}

Result<AttributeDistribution> BuildDistribution(const Column& column,
                                                int64_t lo, int64_t hi,
                                                int64_t max_domain) {
  if (hi < lo) return InvalidArgumentError("BuildDistribution: hi < lo");
  const int64_t domain = hi - lo + 1;
  if (domain > max_domain) {
    return ResourceExhaustedError(
        StrCat("BuildDistribution: domain ", domain, " exceeds cap ",
               max_domain,
               " (pre-aggregate values into coarser buckets first)"));
  }
  AttributeDistribution out;
  out.domain_lo = lo;
  out.counts.assign(static_cast<size_t>(domain), 0);
  for (int64_t v : column.values()) {
    if (v >= lo && v <= hi) {
      ++out.counts[static_cast<size_t>(v - lo)];
    }
  }
  return out;
}

Result<AttributeDistribution> BuildDistribution(const Column& column,
                                                int64_t max_domain) {
  RANGESYN_ASSIGN_OR_RETURN(auto bounds, column.ValueBounds());
  return BuildDistribution(column, bounds.first, bounds.second, max_domain);
}

Status Table::AddColumn(const std::string& column_name) {
  if (num_rows_ > 0) {
    return FailedPreconditionError(
        "Table::AddColumn: cannot add columns after rows");
  }
  if (index_.contains(column_name)) {
    return AlreadyExistsError(
        StrCat("column '", column_name, "' already exists"));
  }
  index_.emplace(column_name, columns_.size());
  columns_.emplace_back(column_name);
  return OkStatus();
}

Status Table::AppendRow(const std::vector<int64_t>& row) {
  if (row.size() != columns_.size()) {
    return InvalidArgumentError(
        StrCat("Table::AppendRow: got ", row.size(), " values for ",
               columns_.size(), " columns"));
  }
  for (size_t i = 0; i < row.size(); ++i) columns_[i].Append(row[i]);
  ++num_rows_;
  return OkStatus();
}

Result<const Column*> Table::GetColumn(const std::string& column_name) const {
  const auto it = index_.find(column_name);
  if (it == index_.end()) {
    return NotFoundError(StrCat("no column '", column_name, "'"));
  }
  return &columns_[it->second];
}

std::vector<std::string> Table::ColumnNames() const {
  std::vector<std::string> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.name());
  return out;
}

}  // namespace rangesyn
