#ifndef RANGESYN_ENGINE_CATALOG_H_
#define RANGESYN_ENGINE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/estimator.h"
#include "core/mutex.h"
#include "core/result.h"
#include "engine/factory.h"
#include "engine/table.h"
#include "qpath/flat_synopsis.h"

namespace rangesyn {

/// Statistics catalog: one synopsis per registered column, with storage
/// accounting. This is the component a query optimizer or approximate
/// query processor would consult instead of scanning the table.
///
/// Thread safety: all operations are safe to call concurrently on one
/// catalog — `mu_` serializes every access to the entry map, including
/// FlatView's lazy compile against a concurrent Evict. Moving a catalog
/// concurrently with any other use of either operand is not supported
/// (the standard C++ move contract).
class SynopsisCatalog {
 public:
  SynopsisCatalog() = default;

  // Move-only (owns estimators). Hand-written because Mutex is neither
  // movable nor copyable: a move transfers the entries under both locks
  // and leaves each catalog with its own mutex.
  SynopsisCatalog(SynopsisCatalog&& other) noexcept;
  SynopsisCatalog& operator=(SynopsisCatalog&& other) noexcept;
  SynopsisCatalog(const SynopsisCatalog&) = delete;
  SynopsisCatalog& operator=(const SynopsisCatalog&) = delete;

  /// Builds and registers a synopsis for `column` under `key` (e.g.
  /// "orders.price"). The distribution is derived from the column's own
  /// value bounds.
  Status RegisterColumn(const std::string& key, const Column& column,
                        const SynopsisSpec& spec);

  /// Registers a synopsis over an explicit, pre-built distribution.
  Status RegisterDistribution(const std::string& key,
                              AttributeDistribution distribution,
                              const SynopsisSpec& spec);

  bool Contains(const std::string& key) const {
    MutexLock lock(mu_);
    return entries_.contains(key);
  }

  /// Estimated COUNT(*) WHERE lo <= value <= hi against the synopsis for
  /// `key`. Value ranges are clipped to the registered domain; a range
  /// entirely outside it estimates 0.
  Result<double> EstimateCountBetween(const std::string& key, int64_t lo,
                                      int64_t hi) const;

  /// Estimated number of records with value exactly `v`.
  Result<double> EstimateEquals(const std::string& key, int64_t v) const;

  /// Estimated selectivity (fraction of rows) of lo <= value <= hi, using
  /// the synopsis' own estimate of the total row count as denominator.
  Result<double> EstimateSelectivity(const std::string& key, int64_t lo,
                                     int64_t hi) const;

  /// One range predicate of a conjunction.
  struct Predicate {
    std::string key;
    int64_t lo = 0;
    int64_t hi = 0;
  };

  /// Estimated selectivity of a conjunction of range predicates over
  /// distinct columns under the classical attribute-value-independence
  /// assumption: the product of per-column selectivities. (The standard
  /// optimizer heuristic; correlated columns need joint statistics, which
  /// single-column synopses cannot provide.)
  Result<double> EstimateConjunctionSelectivity(
      const std::vector<Predicate>& predicates) const;

  /// Storage (words) of one entry / of the whole catalog.
  Result<int64_t> StorageWords(const std::string& key) const;
  int64_t TotalStorageWords() const;

  /// Serializes every entry (keys, domain metadata, synopsis bytes) into
  /// one buffer; Deserialize restores an equivalent catalog. This is what
  /// a database would persist across restarts instead of rebuilding
  /// statistics from table scans.
  ///
  /// Format v2 (current writer) length-prefixes each entry and protects it
  /// with its own CRC32C, plus a whole-buffer CRC32C trailer; v1 buffers
  /// (inline entries, no checksums) are still read. Deserialize is strict:
  /// any checksum or parse failure rejects the whole buffer.
  Result<std::string> Serialize() const;
  static Result<SynopsisCatalog> Deserialize(std::string_view bytes);

  /// Outcome of a lenient load: how many entries were quarantined and why.
  struct LoadReport {
    int64_t entries_total = 0;
    int64_t entries_loaded = 0;
    struct Quarantined {
      /// Best-effort: empty when the entry was too damaged to name.
      std::string key;
      std::string error;
    };
    std::vector<Quarantined> quarantined;
  };

  /// Lenient variant for v2 buffers: an entry whose CRC or parse fails is
  /// *quarantined* — skipped and recorded in `report` — while the
  /// remaining entries load normally (the per-entry checksums localize the
  /// damage). Fails outright only when the header or entry framing is
  /// unusable (and always behaves strictly on v1 buffers, which have no
  /// per-entry checksums to localize with). `report` may be null.
  static Result<SynopsisCatalog> DeserializeWithReport(
      std::string_view bytes, LoadReport* report);

  /// File convenience wrappers around Serialize/Deserialize. Save writes
  /// atomically (temp file + rename + fsync). LoadFromFile is strict;
  /// LoadFromFileWithReport quarantines corrupt entries as above.
  Status SaveToFile(const std::string& path) const;
  static Result<SynopsisCatalog> LoadFromFile(const std::string& path);
  static Result<SynopsisCatalog> LoadFromFileWithReport(
      const std::string& path, LoadReport* report);

  /// Flat (structure-of-arrays) view of `key`'s synopsis for the serving
  /// hot path. Compiled lazily on first request and cached; later calls
  /// return the same shared view. The view answers queries bit-identically
  /// to the entry's estimator (tests/qpath_equivalence_test.cc). Lends a
  /// view: the returned shared_ptr is the keep-alive handle for the flat
  /// storage; the lazy compile-and-cache runs under `mu_`, so racing
  /// FlatView calls agree on one view and never observe a half-built one.
  RANGESYN_LENDS_VIEW Result<std::shared_ptr<const FlatSynopsis>> FlatView(
      const std::string& key);

  /// Removes `key` from the catalog. Lifetime contract: flat views handed
  /// out earlier stay valid — they share ownership of their storage — so
  /// eviction never dangles an outstanding reader; only future lookups
  /// fail. NotFound when the key is absent.
  Status Evict(const std::string& key);

  /// Registered keys with method names, for introspection.
  struct EntryInfo {
    std::string key;
    std::string method;
    int64_t storage_words = 0;
    int64_t domain_lo = 0;
    int64_t domain_hi = 0;
  };
  std::vector<EntryInfo> ListEntries() const;

 private:
  struct Entry {
    AttributeDistribution distribution;  // counts cleared after build
    int64_t domain_lo = 0;
    int64_t domain_size = 0;
    std::string method;
    RangeEstimatorPtr estimator;
    /// Lazily compiled flat view (FlatView); shared with callers so
    /// eviction cannot invalidate an outstanding reader.
    std::shared_ptr<const FlatSynopsis> flat;
  };

  // Lock-held helpers (thread_annotations.h conventions): callers hold
  // `mu_`. The public Estimate* entry points lock once and delegate so
  // the composite estimators (selectivity, conjunctions) never re-enter
  // the non-reentrant mutex.
  Result<const Entry*> FindLocked(const std::string& key) const
      RANGESYN_REQUIRES(mu_);
  Result<double> EstimateCountBetweenLocked(const std::string& key,
                                            int64_t lo, int64_t hi) const
      RANGESYN_REQUIRES(mu_);
  Result<double> EstimateSelectivityLocked(const std::string& key,
                                           int64_t lo, int64_t hi) const
      RANGESYN_REQUIRES(mu_);

  /// Serializes every access to `entries_`, including FlatView's lazy
  /// compile-and-cache of `Entry::flat` against concurrent Evict — the
  /// map erase would otherwise race the in-place entry mutation.
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ RANGESYN_GUARDED_BY(mu_);
};

}  // namespace rangesyn

#endif  // RANGESYN_ENGINE_CATALOG_H_
