#ifndef RANGESYN_ENGINE_TABLE_H_
#define RANGESYN_ENGINE_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/result.h"

namespace rangesyn {

/// A single integer column of an in-memory table: the record values, plus
/// the machinery to derive the attribute-value distribution (frequency
/// vector) that synopses are built from.
class Column {
 public:
  explicit Column(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return static_cast<int64_t>(values_.size()); }
  const std::vector<int64_t>& values() const { return values_; }

  void Append(int64_t value) { values_.push_back(value); }
  void AppendBatch(const std::vector<int64_t>& values);

  /// Exact COUNT(*) WHERE lo <= value <= hi. O(rows).
  int64_t CountRange(int64_t lo, int64_t hi) const;

  /// Exact SUM(value) WHERE lo <= value <= hi. O(rows).
  int64_t SumRange(int64_t lo, int64_t hi) const;

  /// Smallest and largest value; fails on an empty column.
  Result<std::pair<int64_t, int64_t>> ValueBounds() const;

 private:
  std::string name_;
  std::vector<int64_t> values_;
};

/// The attribute-value distribution of a column over an explicit domain:
/// counts[i] = number of records with value = domain_lo + i. Synopses are
/// built over `counts`; the mapping converts between record-value space
/// and the 1-based positions the estimators use.
struct AttributeDistribution {
  int64_t domain_lo = 0;
  std::vector<int64_t> counts;

  int64_t domain_size() const { return static_cast<int64_t>(counts.size()); }
  int64_t domain_hi() const { return domain_lo + domain_size() - 1; }

  /// 1-based estimator position of record value `v` (clamped to domain).
  int64_t PositionOf(int64_t v) const;
};

/// Builds the distribution of `column` over [lo, hi] (values outside are
/// ignored). Fails if hi < lo or the domain exceeds `max_domain` slots.
Result<AttributeDistribution> BuildDistribution(const Column& column,
                                                int64_t lo, int64_t hi,
                                                int64_t max_domain = 1 << 22);

/// As above with bounds taken from the column itself.
Result<AttributeDistribution> BuildDistribution(const Column& column,
                                                int64_t max_domain = 1 << 22);

/// A minimal in-memory table: named integer columns of equal length.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return num_rows_; }
  int64_t num_columns() const { return static_cast<int64_t>(columns_.size()); }

  /// Adds an empty column; fails if the name exists or rows were added.
  Status AddColumn(const std::string& column_name);

  /// Appends one row; `row` must have one value per column in AddColumn
  /// order.
  Status AppendRow(const std::vector<int64_t>& row);

  Result<const Column*> GetColumn(const std::string& column_name) const;
  std::vector<std::string> ColumnNames() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::map<std::string, size_t> index_;
  int64_t num_rows_ = 0;
};

}  // namespace rangesyn

#endif  // RANGESYN_ENGINE_TABLE_H_
