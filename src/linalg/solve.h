#ifndef RANGESYN_LINALG_SOLVE_H_
#define RANGESYN_LINALG_SOLVE_H_

#include <vector>

#include "core/result.h"
#include "linalg/matrix.h"

namespace rangesyn {

/// Solves A x = b via LU decomposition with partial pivoting. A must be
/// square with rows() == b.size(). Fails with InvalidArgument on shape
/// mismatch and FailedPrecondition when A is (numerically) singular.
Result<std::vector<double>> SolveLU(const Matrix& a,
                                    const std::vector<double>& b);

/// Solves A x = b for symmetric positive definite A via Cholesky.
/// Fails with FailedPrecondition when A is not SPD (non-positive pivot).
Result<std::vector<double>> SolveCholesky(const Matrix& a,
                                          const std::vector<double>& b);

/// Solves the possibly semi-definite symmetric system A x = b by adding a
/// tiny ridge (`ridge * trace(A)/n`) before Cholesky; falls back to LU with
/// pivoting if Cholesky still fails. Used for the re-optimization normal
/// equations, which are PSD by construction and SPD in all non-degenerate
/// bucketings.
Result<std::vector<double>> SolveSymmetricRobust(const Matrix& a,
                                                 const std::vector<double>& b,
                                                 double ridge = 1e-12);

/// Max-abs residual ||A x - b||_inf, for verifying solutions in tests.
double Residual(const Matrix& a, const std::vector<double>& x,
                const std::vector<double>& b);

}  // namespace rangesyn

#endif  // RANGESYN_LINALG_SOLVE_H_
