#include "linalg/matrix.h"

#include <cmath>

namespace rangesyn {

Matrix Matrix::Identity(int64_t n) {
  Matrix m(n, n);
  for (int64_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  RANGESYN_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      // Sparsity skip: only an exact stored zero contributes nothing.
      if (aik == 0.0) continue;  // lint: float-eq-ok
      for (int64_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::Multiply(const std::vector<double>& v) const {
  RANGESYN_CHECK_EQ(cols_, static_cast<int64_t>(v.size()));
  std::vector<double> out(static_cast<size_t>(rows_), 0.0);
  for (int64_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * v[static_cast<size_t>(j)];
    out[static_cast<size_t>(i)] = acc;
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  RANGESYN_CHECK_EQ(rows_, other.rows_);
  RANGESYN_CHECK_EQ(cols_, other.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    m = std::fmax(m, std::fabs(data_[i] - other.data_[i]));
  }
  return m;
}

bool Matrix::IsSymmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (int64_t i = 0; i < rows_; ++i) {
    for (int64_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

std::vector<double> Subtract(const std::vector<double>& v,
                             const std::vector<double>& w) {
  RANGESYN_CHECK_EQ(v.size(), w.size());
  std::vector<double> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] - w[i];
  return out;
}

double Dot(const std::vector<double>& v, const std::vector<double>& w) {
  RANGESYN_CHECK_EQ(v.size(), w.size());
  double acc = 0.0;
  for (size_t i = 0; i < v.size(); ++i) acc += v[i] * w[i];
  return acc;
}

double Norm2(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double NormInf(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::fmax(m, std::fabs(x));
  return m;
}

}  // namespace rangesyn
