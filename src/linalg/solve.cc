#include "linalg/solve.h"

#include <cmath>

namespace rangesyn {

Result<std::vector<double>> SolveLU(const Matrix& a,
                                    const std::vector<double>& b) {
  const int64_t n = a.rows();
  if (a.cols() != n) return InvalidArgumentError("SolveLU: A must be square");
  if (static_cast<int64_t>(b.size()) != n) {
    return InvalidArgumentError("SolveLU: b size mismatch");
  }
  Matrix lu = a;
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;

  for (int64_t col = 0; col < n; ++col) {
    // Partial pivoting: pick the largest magnitude entry in this column.
    int64_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (int64_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    // Only an exactly zero pivot column is structurally singular;
    // near-zero pivots are legal (just ill-conditioned).
    if (best == 0.0) {  // lint: float-eq-ok
      return FailedPreconditionError("SolveLU: singular matrix");
    }
    if (pivot != col) {
      for (int64_t c = 0; c < n; ++c) std::swap(lu(col, c), lu(pivot, c));
      std::swap(perm[static_cast<size_t>(col)],
                perm[static_cast<size_t>(pivot)]);
    }
    const double d = lu(col, col);
    for (int64_t r = col + 1; r < n; ++r) {
      const double factor = lu(r, col) / d;
      lu(r, col) = factor;  // store L below the diagonal
      // Sparsity skip: exact zero factor leaves the row untouched.
      if (factor == 0.0) continue;  // lint: float-eq-ok
      for (int64_t c = col + 1; c < n; ++c) {
        lu(r, c) -= factor * lu(col, c);
      }
    }
  }

  // Forward substitution with permuted b (L has implicit unit diagonal).
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double acc = b[static_cast<size_t>(perm[static_cast<size_t>(i)])];
    for (int64_t j = 0; j < i; ++j) acc -= lu(i, j) * y[static_cast<size_t>(j)];
    y[static_cast<size_t>(i)] = acc;
  }
  // Back substitution.
  std::vector<double> x(static_cast<size_t>(n));
  for (int64_t i = n - 1; i >= 0; --i) {
    double acc = y[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < n; ++j) acc -= lu(i, j) * x[static_cast<size_t>(j)];
    x[static_cast<size_t>(i)] = acc / lu(i, i);
  }
  return x;
}

Result<std::vector<double>> SolveCholesky(const Matrix& a,
                                          const std::vector<double>& b) {
  const int64_t n = a.rows();
  if (a.cols() != n) {
    return InvalidArgumentError("SolveCholesky: A must be square");
  }
  if (static_cast<int64_t>(b.size()) != n) {
    return InvalidArgumentError("SolveCholesky: b size mismatch");
  }
  Matrix l(n, n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (int64_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        if (acc <= 0.0) {
          return FailedPreconditionError("SolveCholesky: matrix not SPD");
        }
        l(i, i) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  // L y = b
  std::vector<double> y(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    double acc = b[static_cast<size_t>(i)];
    for (int64_t j = 0; j < i; ++j) acc -= l(i, j) * y[static_cast<size_t>(j)];
    y[static_cast<size_t>(i)] = acc / l(i, i);
  }
  // L^T x = y
  std::vector<double> x(static_cast<size_t>(n));
  for (int64_t i = n - 1; i >= 0; --i) {
    double acc = y[static_cast<size_t>(i)];
    for (int64_t j = i + 1; j < n; ++j) acc -= l(j, i) * x[static_cast<size_t>(j)];
    x[static_cast<size_t>(i)] = acc / l(i, i);
  }
  return x;
}

Result<std::vector<double>> SolveSymmetricRobust(const Matrix& a,
                                                 const std::vector<double>& b,
                                                 double ridge) {
  const int64_t n = a.rows();
  if (a.cols() != n || static_cast<int64_t>(b.size()) != n) {
    return InvalidArgumentError("SolveSymmetricRobust: shape mismatch");
  }
  double trace = 0.0;
  for (int64_t i = 0; i < n; ++i) trace += a(i, i);
  const double lambda =
      ridge * (n > 0 ? trace / static_cast<double>(n) : 1.0);
  Matrix reg = a;
  for (int64_t i = 0; i < n; ++i) reg(i, i) += lambda;
  Result<std::vector<double>> chol = SolveCholesky(reg, b);
  if (chol.ok()) return chol;
  return SolveLU(reg, b);
}

double Residual(const Matrix& a, const std::vector<double>& x,
                const std::vector<double>& b) {
  return NormInf(Subtract(a.Multiply(x), b));
}

}  // namespace rangesyn
