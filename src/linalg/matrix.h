#ifndef RANGESYN_LINALG_MATRIX_H_
#define RANGESYN_LINALG_MATRIX_H_

#include <cstdint>
#include <vector>

#include "core/logging.h"

namespace rangesyn {

/// Dense row-major matrix of doubles. Sized for the paper's needs (the
/// re-optimization post-pass solves B x B systems with B in the tens to
/// hundreds), so the implementation favors clarity over blocking.
class Matrix {
 public:
  /// Creates a rows x cols matrix of zeros.
  Matrix(int64_t rows, int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows * cols), 0.0) {
    RANGESYN_CHECK_GE(rows, 0);
    RANGESYN_CHECK_GE(cols, 0);
  }

  /// Creates an empty 0x0 matrix.
  Matrix() : Matrix(0, 0) {}

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// The n x n identity.
  static Matrix Identity(int64_t n);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  double operator()(int64_t r, int64_t c) const {
    RANGESYN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }
  double& operator()(int64_t r, int64_t c) {
    RANGESYN_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<size_t>(r * cols_ + c)];
  }

  /// Matrix product; requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Matrix-vector product; requires cols() == v.size().
  std::vector<double> Multiply(const std::vector<double>& v) const;

  Matrix Transposed() const;

  /// Element-wise maximum absolute difference to `other` (same shape).
  double MaxAbsDiff(const Matrix& other) const;

  /// True iff max |(i,j) - (j,i)| <= tol.
  bool IsSymmetric(double tol = 1e-9) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<double> data_;
};

/// v - w elementwise; sizes must match.
std::vector<double> Subtract(const std::vector<double>& v,
                             const std::vector<double>& w);

/// Dot product; sizes must match.
double Dot(const std::vector<double>& v, const std::vector<double>& w);

/// Euclidean norm.
double Norm2(const std::vector<double>& v);

/// Largest absolute entry (0 for empty vectors).
double NormInf(const std::vector<double>& v);

}  // namespace rangesyn

#endif  // RANGESYN_LINALG_MATRIX_H_
