#include "twod/grid.h"

#include <cmath>

#include "core/logging.h"
#include "core/strings.h"
#include "data/distribution.h"
#include "data/rounding.h"

namespace rangesyn {

size_t Grid2D::Index(int64_t r, int64_t c) const {
  RANGESYN_DCHECK(r >= 1 && r <= rows_ && c >= 1 && c <= cols_);
  return static_cast<size_t>(r - 1) * static_cast<size_t>(cols_) +
         static_cast<size_t>(c - 1);
}

Result<Grid2D> Grid2D::Zero(int64_t rows, int64_t cols) {
  if (rows < 1 || cols < 1) {
    return InvalidArgumentError("Grid2D: dims must be >= 1");
  }
  return Grid2D(rows, cols,
                std::vector<int64_t>(
                    static_cast<size_t>(rows) * static_cast<size_t>(cols),
                    0));
}

Result<Grid2D> Grid2D::FromCounts(int64_t rows, int64_t cols,
                                  std::vector<int64_t> counts) {
  if (rows < 1 || cols < 1) {
    return InvalidArgumentError("Grid2D: dims must be >= 1");
  }
  if (static_cast<int64_t>(counts.size()) != rows * cols) {
    return InvalidArgumentError(
        StrCat("Grid2D: got ", counts.size(), " counts for ", rows, "x",
               cols));
  }
  for (int64_t v : counts) {
    if (v < 0) return InvalidArgumentError("Grid2D: negative count");
  }
  return Grid2D(rows, cols, std::move(counts));
}

int64_t Grid2D::TotalVolume() const {
  int64_t total = 0;
  for (int64_t v : counts_) total += v;
  return total;
}

PrefixGrid::PrefixGrid(const Grid2D& grid)
    : rows_(grid.rows()), cols_(grid.cols()) {
  pp_.assign(static_cast<size_t>(rows_ + 1) * static_cast<size_t>(cols_ + 1),
             0);
  for (int64_t r = 1; r <= rows_; ++r) {
    for (int64_t c = 1; c <= cols_; ++c) {
      const size_t stride = static_cast<size_t>(cols_ + 1);
      const size_t idx = static_cast<size_t>(r) * stride +
                         static_cast<size_t>(c);
      pp_[idx] = grid.at(r, c) + pp_[idx - 1] + pp_[idx - stride] -
                 pp_[idx - stride - 1];
    }
  }
}

int64_t PrefixGrid::RectSum(const RectQuery& q) const {
  RANGESYN_DCHECK(q.r1 >= 1 && q.r1 <= q.r2 && q.r2 <= rows_);
  RANGESYN_DCHECK(q.c1 >= 1 && q.c1 <= q.c2 && q.c2 <= cols_);
  return PP(q.r2, q.c2) - PP(q.r1 - 1, q.c2) - PP(q.r2, q.c1 - 1) +
         PP(q.r1 - 1, q.c1 - 1);
}

std::vector<RectQuery> AllRectangles(int64_t rows, int64_t cols) {
  RANGESYN_CHECK_GE(rows, 1);
  RANGESYN_CHECK_GE(cols, 1);
  std::vector<RectQuery> out;
  out.reserve(static_cast<size_t>(rows * (rows + 1) / 2) *
              static_cast<size_t>(cols * (cols + 1) / 2));
  for (int64_t r1 = 1; r1 <= rows; ++r1) {
    for (int64_t r2 = r1; r2 <= rows; ++r2) {
      for (int64_t c1 = 1; c1 <= cols; ++c1) {
        for (int64_t c2 = c1; c2 <= cols; ++c2) {
          out.push_back({r1, r2, c1, c2});
        }
      }
    }
  }
  return out;
}

Result<std::vector<RectQuery>> UniformRandomRectangles(int64_t rows,
                                                       int64_t cols,
                                                       int64_t count,
                                                       Rng* rng) {
  if (rows < 1 || cols < 1) {
    return InvalidArgumentError("UniformRandomRectangles: dims >= 1");
  }
  if (count < 0) {
    return InvalidArgumentError("UniformRandomRectangles: count >= 0");
  }
  std::vector<RectQuery> out;
  out.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    int64_t r1 = rng->NextInt(1, rows), r2 = rng->NextInt(1, rows);
    int64_t c1 = rng->NextInt(1, cols), c2 = rng->NextInt(1, cols);
    if (r1 > r2) std::swap(r1, r2);
    if (c1 > c2) std::swap(c1, c2);
    out.push_back({r1, r2, c1, c2});
  }
  return out;
}

Result<Grid2D> MakeNamedGrid(const std::string& name, int64_t rows,
                             int64_t cols, double total_volume, Rng* rng) {
  if (rows < 1 || cols < 1) {
    return InvalidArgumentError("MakeNamedGrid: dims >= 1");
  }
  if (total_volume <= 0) {
    return InvalidArgumentError("MakeNamedGrid: total_volume > 0");
  }
  std::vector<double> mass(
      static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0);
  if (name == "product_zipf") {
    ZipfOptions row_opt;
    row_opt.n = rows;
    row_opt.total_volume = 1.0;
    ZipfOptions col_opt;
    col_opt.n = cols;
    col_opt.total_volume = 1.0;
    RANGESYN_ASSIGN_OR_RETURN(std::vector<double> row_m,
                              ZipfFrequencies(row_opt, rng));
    RANGESYN_ASSIGN_OR_RETURN(std::vector<double> col_m,
                              ZipfFrequencies(col_opt, rng));
    for (int64_t r = 0; r < rows; ++r) {
      for (int64_t c = 0; c < cols; ++c) {
        mass[static_cast<size_t>(r) * static_cast<size_t>(cols) +
             static_cast<size_t>(c)] =
            total_volume * row_m[static_cast<size_t>(r)] *
            col_m[static_cast<size_t>(c)];
      }
    }
  } else if (name == "gauss_blobs") {
    const int blobs = 4;
    for (int b = 0; b < blobs; ++b) {
      const double cr = rng->NextDouble(0.0, static_cast<double>(rows));
      const double cc = rng->NextDouble(0.0, static_cast<double>(cols));
      const double sr = rng->NextDouble(1.0, static_cast<double>(rows) / 4);
      const double sc = rng->NextDouble(1.0, static_cast<double>(cols) / 4);
      const double w = rng->NextDouble(0.5, 1.5);
      for (int64_t r = 0; r < rows; ++r) {
        for (int64_t c = 0; c < cols; ++c) {
          const double zr = (static_cast<double>(r) + 0.5 - cr) / sr;
          const double zc = (static_cast<double>(c) + 0.5 - cc) / sc;
          mass[static_cast<size_t>(r) * static_cast<size_t>(cols) +
               static_cast<size_t>(c)] +=
              w * std::exp(-0.5 * (zr * zr + zc * zc));
        }
      }
    }
    double sum = 0.0;
    for (double v : mass) sum += v;
    RANGESYN_CHECK_GT(sum, 0.0);
    for (double& v : mass) v *= total_volume / sum;
  } else {
    return InvalidArgumentError(StrCat("unknown grid family '", name, "'"));
  }
  RANGESYN_ASSIGN_OR_RETURN(
      std::vector<int64_t> counts,
      RandomRound(mass, RandomRoundingMode::kHalf, rng));
  return Grid2D::FromCounts(rows, cols, std::move(counts));
}

}  // namespace rangesyn
