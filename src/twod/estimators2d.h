#ifndef RANGESYN_TWOD_ESTIMATORS2D_H_
#define RANGESYN_TWOD_ESTIMATORS2D_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/result.h"
#include "twod/grid.h"

namespace rangesyn {

/// The 2-D NAIVE bound: one stored value (the global cell average),
/// answering every rectangle as area * average.
class Naive2D : public RectEstimator {
 public:
  static Result<Naive2D> Build(const Grid2D& grid);

  RANGESYN_HOT_PATH double EstimateRect(
      const RectQuery& query) const override;
  int64_t StorageWords() const override { return 1; }
  int64_t rows() const override { return rows_; }
  int64_t cols() const override { return cols_; }
  std::string Name() const override { return "NAIVE-2D"; }

 private:
  Naive2D(int64_t rows, int64_t cols, double avg)
      : rows_(rows), cols_(cols), avg_(avg) {}
  int64_t rows_;
  int64_t cols_;
  double avg_;
};

/// Equi-width grid histogram: tiles x tiles cells, each storing its true
/// average; rectangles are answered cell by cell with the uniformity
/// assumption inside partially covered cells. The classic engine baseline
/// for multidimensional selectivity.
class GridHistogram2D : public RectEstimator {
 public:
  /// `tiles_r` x `tiles_c` cells (clamped to the grid dims), equal-width
  /// tile boundaries.
  static Result<GridHistogram2D> Build(const Grid2D& grid, int64_t tiles_r,
                                       int64_t tiles_c);

  /// Same representation with tile boundaries chosen equi-depth on the
  /// row/column *marginal* distributions — the classical stronger
  /// baseline for skewed joint data.
  static Result<GridHistogram2D> BuildEquiDepth(const Grid2D& grid,
                                                int64_t tiles_r,
                                                int64_t tiles_c);

  RANGESYN_HOT_PATH double EstimateRect(
      const RectQuery& query) const override;
  int64_t StorageWords() const override {
    // Cell masses plus the two boundary vectors.
    return tiles_r_ * tiles_c_ + tiles_r_ + tiles_c_;
  }
  int64_t rows() const override { return rows_; }
  int64_t cols() const override { return cols_; }
  std::string Name() const override { return "GRID-2D"; }

  int64_t tiles_r() const { return tiles_r_; }
  int64_t tiles_c() const { return tiles_c_; }

 private:
  GridHistogram2D(int64_t rows, int64_t cols, int64_t tiles_r,
                  int64_t tiles_c, std::vector<int64_t> row_ends,
                  std::vector<int64_t> col_ends, std::vector<double> mass);

  static Result<GridHistogram2D> BuildFromTileEnds(
      const Grid2D& grid, std::vector<int64_t> row_ends,
      std::vector<int64_t> col_ends);

  double CellMass(int64_t tr, int64_t tc) const {
    return mass_[static_cast<size_t>(tr) * static_cast<size_t>(tiles_c_) +
                 static_cast<size_t>(tc)];
  }

  int64_t rows_;
  int64_t cols_;
  int64_t tiles_r_;
  int64_t tiles_c_;
  std::vector<int64_t> row_ends_;  // 1-based inclusive tile row ends
  std::vector<int64_t> col_ends_;
  std::vector<double> mass_;       // total count per tile (row-major)
};

/// The rectangle-optimal 2-D wavelet synopsis — the tensorized Theorem 9.
/// Every rectangle sum is a 4-point inclusion-exclusion on the 2-D
/// prefix-sum grid PP; in the tensor Haar basis of PP the rectangle SSE
/// decomposes as S*T * Σ c² over dropped coefficients whose *both* factors
/// are non-DC, while coefficients with a DC factor cancel in every query.
/// So: transform PP, never store DC-factor coefficients, keep the top-B
/// magnitudes — provably optimal when rows+1 and cols+1 are powers of two
/// (constant-extended padding otherwise). Queries take O(log² n).
class Wave2DRangeOpt : public RectEstimator {
 public:
  static Result<Wave2DRangeOpt> Build(const Grid2D& grid, int64_t budget);

  /// Advanced: selects the top-`budget` eligible coefficients from a
  /// precomputed row-major S x T tensor-coefficient array of the padded
  /// prefix grid (as produced internally by Build, or maintained by
  /// DynamicWave2DMaintainer).
  static Result<Wave2DRangeOpt> FromCoefficients(
      int64_t rows, int64_t cols, int64_t s, int64_t t,
      const std::vector<double>& coeffs, int64_t budget);

  RANGESYN_HOT_PATH double EstimateRect(
      const RectQuery& query) const override;
  int64_t StorageWords() const override {
    return 3 * static_cast<int64_t>(coeff_values_.size());  // (u,v,value)
  }
  int64_t rows() const override { return rows_; }
  int64_t cols() const override { return cols_; }
  std::string Name() const override { return "WAVE-2D-RANGE-OPT"; }

  int64_t padded_rows() const { return s_; }
  int64_t padded_cols() const { return t_; }
  int64_t num_coefficients() const {
    return static_cast<int64_t>(coeff_values_.size());
  }

  /// Predicted all-rectangles SSE = S*T * (dropped energy over u,v >= 1);
  /// exact when rows+1 == S and cols+1 == T. Exposed for tests.
  double predicted_sse() const { return predicted_sse_; }

 private:
  Wave2DRangeOpt(int64_t rows, int64_t cols, int64_t s, int64_t t,
                 std::vector<std::pair<int64_t, int64_t>> coeff_keys,
                 std::vector<double> coeff_values, double predicted_sse);

  /// Reconstructed PP difference functional for one axis pair.
  double Lookup(int64_t u, int64_t v) const;

  int64_t rows_;
  int64_t cols_;
  int64_t s_;  // padded rows+1 dimension
  int64_t t_;  // padded cols+1 dimension
  std::vector<std::pair<int64_t, int64_t>> coeff_keys_;
  std::vector<double> coeff_values_;
  std::unordered_map<int64_t, double> by_key_;
  double predicted_sse_;
};

/// Dynamic maintenance of the rectangle-optimal wavelet coefficients —
/// the 2-D counterpart of DynamicRangeSynopsisMaintainer. A point update
/// grid[r][c] += delta bumps the prefix grid PP by a constant on the
/// quadrant [r.., c..]; in the tensor Haar basis that projects onto
/// (ancestors of r) x (ancestors of c): O(log² n) coefficients per
/// update. Snapshot() re-selects the top-B eligible coefficients.
class DynamicWave2DMaintainer {
 public:
  static Result<DynamicWave2DMaintainer> Create(const Grid2D& grid);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }
  int64_t updates_applied() const { return updates_; }

  /// Applies grid[r][c] += delta (1-based); fails if the count would go
  /// negative. O(log² n).
  Status ApplyUpdate(int64_t r, int64_t c, int64_t delta);

  /// Current exact count.
  int64_t CountAt(int64_t r, int64_t c) const { return grid_.at(r, c); }

  /// Rectangle-optimal B-coefficient synopsis of the current grid —
  /// identical to Wave2DRangeOpt::Build on the updated data.
  Result<Wave2DRangeOpt> Snapshot(int64_t budget) const;

 private:
  DynamicWave2DMaintainer(Grid2D grid, int64_t s, int64_t t,
                          std::vector<double> coeffs)
      : rows_(grid.rows()),
        cols_(grid.cols()),
        s_(s),
        t_(t),
        grid_(std::move(grid)),
        coeffs_(std::move(coeffs)) {}

  int64_t rows_;
  int64_t cols_;
  int64_t s_;  // padded rows+1
  int64_t t_;  // padded cols+1
  int64_t updates_ = 0;
  Grid2D grid_;
  std::vector<double> coeffs_;  // row-major S x T tensor coefficients
};

/// SSE of `estimator` over an explicit rectangle workload (exact answers
/// from the prefix grid).
Result<double> RectWorkloadSse(const Grid2D& grid,
                               const RectEstimator& estimator,
                               const std::vector<RectQuery>& queries);

/// SSE over all rectangles — O((rows*cols)²); small grids only.
Result<double> AllRectanglesSse(const Grid2D& grid,
                                const RectEstimator& estimator);

}  // namespace rangesyn

#endif  // RANGESYN_TWOD_ESTIMATORS2D_H_
