#ifndef RANGESYN_TWOD_GRID_H_
#define RANGESYN_TWOD_GRID_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/analysis_annotations.h"
#include "core/random.h"
#include "core/result.h"

namespace rangesyn {

/// Two-dimensional attribute-value distribution: counts[r][c] = number of
/// records with joint value (r+1, c+1). The substrate for the paper's
/// footnote-2 extension ("straightforward extension of our results to
/// higher dimensions").
class Grid2D {
 public:
  /// rows x cols grid of zeros.
  static Result<Grid2D> Zero(int64_t rows, int64_t cols);

  /// From row-major counts; all must be >= 0.
  static Result<Grid2D> FromCounts(int64_t rows, int64_t cols,
                                   std::vector<int64_t> counts);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  /// 1-based access, r in [1, rows], c in [1, cols].
  int64_t at(int64_t r, int64_t c) const {
    return counts_[Index(r, c)];
  }
  void set(int64_t r, int64_t c, int64_t v) { counts_[Index(r, c)] = v; }
  void add(int64_t r, int64_t c, int64_t delta) {
    counts_[Index(r, c)] += delta;
  }

  int64_t TotalVolume() const;

 private:
  Grid2D(int64_t rows, int64_t cols, std::vector<int64_t> counts)
      : rows_(rows), cols_(cols), counts_(std::move(counts)) {}

  size_t Index(int64_t r, int64_t c) const;

  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> counts_;  // row-major
};

/// A rectangle range-sum query: sum of counts over rows [r1, r2] and
/// columns [c1, c2], 1-based inclusive.
struct RectQuery {
  int64_t r1 = 1, r2 = 1, c1 = 1, c2 = 1;
  friend bool operator==(const RectQuery&, const RectQuery&) = default;
};

/// Exact 2-D prefix sums: PP[t1][t2] = sum of counts over rows <= t1 and
/// cols <= t2 (t's are 0..rows / 0..cols), giving O(1) exact rectangle
/// sums by inclusion-exclusion.
class PrefixGrid {
 public:
  explicit PrefixGrid(const Grid2D& grid);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  /// PP[t1][t2], 0 <= t1 <= rows, 0 <= t2 <= cols.
  int64_t PP(int64_t t1, int64_t t2) const {
    return pp_[static_cast<size_t>(t1) * static_cast<size_t>(cols_ + 1) +
               static_cast<size_t>(t2)];
  }

  /// Exact rectangle sum; requires a valid query.
  int64_t RectSum(const RectQuery& q) const;

 private:
  int64_t rows_;
  int64_t cols_;
  std::vector<int64_t> pp_;
};

/// Interface for 2-D rectangle-sum synopses.
class RectEstimator {
 public:
  virtual ~RectEstimator() = default;
  /// Serves per-query traffic; implementations must stay
  /// allocation- and lock-free (rangesyn-analyze SA-101/SA-102).
  RANGESYN_HOT_PATH virtual double EstimateRect(
      const RectQuery& query) const = 0;
  virtual int64_t StorageWords() const = 0;
  virtual int64_t rows() const = 0;
  virtual int64_t cols() const = 0;
  virtual std::string Name() const = 0;
};

/// All rectangle queries of a grid (rows*(rows+1)/2 * cols*(cols+1)/2 of
/// them — use only for small grids / tests).
std::vector<RectQuery> AllRectangles(int64_t rows, int64_t cols);

/// `count` uniformly random rectangles.
Result<std::vector<RectQuery>> UniformRandomRectangles(int64_t rows,
                                                       int64_t cols,
                                                       int64_t count,
                                                       Rng* rng);

/// Synthetic 2-D distributions: "product_zipf" (outer product of two
/// randomly placed Zipf marginals) and "gauss_blobs" (a few Gaussian
/// bumps), rounded to integer counts with total ~ total_volume.
Result<Grid2D> MakeNamedGrid(const std::string& name, int64_t rows,
                             int64_t cols, double total_volume, Rng* rng);

}  // namespace rangesyn

#endif  // RANGESYN_TWOD_GRID_H_
