#include "twod/estimators2d.h"

#include <algorithm>
#include <cmath>

#include "core/analysis_annotations.h"
#include "core/logging.h"
#include "core/mathutil.h"
#include "core/strings.h"
#include "wavelet/haar.h"

namespace rangesyn {
namespace {

/// Argument validation for rect queries. On hot paths it is only invoked
/// under RANGESYN_DCHECK; the StrCat in the error arm never runs on the
/// success path, so the hot-path walk stops here.
RANGESYN_COLD_PATH Status ValidateRect(const RectQuery& q, int64_t rows,
                                       int64_t cols) {
  if (q.r1 < 1 || q.r1 > q.r2 || q.r2 > rows || q.c1 < 1 || q.c1 > q.c2 ||
      q.c2 > cols) {
    return InvalidArgumentError(
        StrCat("bad rectangle [", q.r1, ",", q.r2, "]x[", q.c1, ",", q.c2,
               "] for ", rows, "x", cols));
  }
  return OkStatus();
}

/// Tile ends for an equi-width split of 1..n into k parts.
std::vector<int64_t> TileEnds(int64_t n, int64_t k) {
  std::vector<int64_t> ends;
  ends.reserve(static_cast<size_t>(k));
  for (int64_t i = 1; i <= k; ++i) ends.push_back((n * i) / k);
  ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
  return ends;
}

int64_t TileOf(const std::vector<int64_t>& ends, int64_t pos) {
  return std::lower_bound(ends.begin(), ends.end(), pos) - ends.begin();
}

}  // namespace

// ----------------------------------------------------------------- Naive2D

Result<Naive2D> Naive2D::Build(const Grid2D& grid) {
  const double cells =
      static_cast<double>(grid.rows()) * static_cast<double>(grid.cols());
  return Naive2D(grid.rows(), grid.cols(),
                 static_cast<double>(grid.TotalVolume()) / cells);
}

double Naive2D::EstimateRect(const RectQuery& q) const {
  RANGESYN_DCHECK(ValidateRect(q, rows_, cols_).ok());
  const double area = static_cast<double>(q.r2 - q.r1 + 1) *
                      static_cast<double>(q.c2 - q.c1 + 1);
  return area * avg_;
}

// --------------------------------------------------------- GridHistogram2D

GridHistogram2D::GridHistogram2D(int64_t rows, int64_t cols, int64_t tiles_r,
                                 int64_t tiles_c,
                                 std::vector<int64_t> row_ends,
                                 std::vector<int64_t> col_ends,
                                 std::vector<double> mass)
    : rows_(rows),
      cols_(cols),
      tiles_r_(tiles_r),
      tiles_c_(tiles_c),
      row_ends_(std::move(row_ends)),
      col_ends_(std::move(col_ends)),
      mass_(std::move(mass)) {}

namespace {

/// Equi-depth boundaries on a marginal mass vector: k ends covering
/// roughly equal total mass each.
std::vector<int64_t> EquiDepthEnds(const std::vector<int64_t>& marginal,
                                   int64_t k) {
  const int64_t n = static_cast<int64_t>(marginal.size());
  const int64_t b = std::min(k, n);
  double total = 0.0;
  for (int64_t v : marginal) total += static_cast<double>(v);
  std::vector<int64_t> ends;
  ends.reserve(static_cast<size_t>(b));
  double acc = 0.0;
  int64_t prev = 0;
  for (int64_t i = 1; i < b; ++i) {
    const double target = total * static_cast<double>(i) /
                          static_cast<double>(b);
    int64_t e = prev + 1;
    double run = acc + static_cast<double>(marginal[static_cast<size_t>(
                           e - 1)]);
    while (e < n - (b - i) && run < target) {
      ++e;
      run += static_cast<double>(marginal[static_cast<size_t>(e - 1)]);
    }
    ends.push_back(e);
    prev = e;
    acc = run;
  }
  ends.push_back(n);
  ends.erase(std::unique(ends.begin(), ends.end()), ends.end());
  return ends;
}

}  // namespace

Result<GridHistogram2D> GridHistogram2D::Build(const Grid2D& grid,
                                               int64_t tiles_r,
                                               int64_t tiles_c) {
  if (tiles_r < 1 || tiles_c < 1) {
    return InvalidArgumentError("GridHistogram2D: tiles >= 1");
  }
  return BuildFromTileEnds(
      grid, TileEnds(grid.rows(), std::min(tiles_r, grid.rows())),
      TileEnds(grid.cols(), std::min(tiles_c, grid.cols())));
}

Result<GridHistogram2D> GridHistogram2D::BuildEquiDepth(const Grid2D& grid,
                                                        int64_t tiles_r,
                                                        int64_t tiles_c) {
  if (tiles_r < 1 || tiles_c < 1) {
    return InvalidArgumentError("GridHistogram2D: tiles >= 1");
  }
  std::vector<int64_t> row_marginal(static_cast<size_t>(grid.rows()), 0);
  std::vector<int64_t> col_marginal(static_cast<size_t>(grid.cols()), 0);
  for (int64_t r = 1; r <= grid.rows(); ++r) {
    for (int64_t c = 1; c <= grid.cols(); ++c) {
      row_marginal[static_cast<size_t>(r - 1)] += grid.at(r, c);
      col_marginal[static_cast<size_t>(c - 1)] += grid.at(r, c);
    }
  }
  return BuildFromTileEnds(grid, EquiDepthEnds(row_marginal, tiles_r),
                           EquiDepthEnds(col_marginal, tiles_c));
}

Result<GridHistogram2D> GridHistogram2D::BuildFromTileEnds(
    const Grid2D& grid, std::vector<int64_t> row_ends,
    std::vector<int64_t> col_ends) {
  PrefixGrid prefix(grid);
  std::vector<double> mass(row_ends.size() * col_ends.size());
  int64_t prev_r = 0;
  for (size_t i = 0; i < row_ends.size(); ++i) {
    int64_t prev_c = 0;
    for (size_t j = 0; j < col_ends.size(); ++j) {
      mass[i * col_ends.size() + j] = static_cast<double>(prefix.RectSum(
          {prev_r + 1, row_ends[i], prev_c + 1, col_ends[j]}));
      prev_c = col_ends[j];
    }
    prev_r = row_ends[i];
  }
  const int64_t num_tiles_r = static_cast<int64_t>(row_ends.size());
  const int64_t num_tiles_c = static_cast<int64_t>(col_ends.size());
  return GridHistogram2D(grid.rows(), grid.cols(), num_tiles_r, num_tiles_c,
                         std::move(row_ends), std::move(col_ends),
                         std::move(mass));
}

double GridHistogram2D::EstimateRect(const RectQuery& q) const {
  RANGESYN_DCHECK(ValidateRect(q, rows_, cols_).ok());
  const int64_t tr_lo = TileOf(row_ends_, q.r1);
  const int64_t tr_hi = TileOf(row_ends_, q.r2);
  const int64_t tc_lo = TileOf(col_ends_, q.c1);
  const int64_t tc_hi = TileOf(col_ends_, q.c2);
  double estimate = 0.0;
  for (int64_t tr = tr_lo; tr <= tr_hi; ++tr) {
    const int64_t t_r1 =
        (tr == 0) ? 1 : row_ends_[static_cast<size_t>(tr - 1)] + 1;
    const int64_t t_r2 = row_ends_[static_cast<size_t>(tr)];
    const double row_overlap = static_cast<double>(
        std::min(q.r2, t_r2) - std::max(q.r1, t_r1) + 1);
    const double row_span = static_cast<double>(t_r2 - t_r1 + 1);
    for (int64_t tc = tc_lo; tc <= tc_hi; ++tc) {
      const int64_t t_c1 =
          (tc == 0) ? 1 : col_ends_[static_cast<size_t>(tc - 1)] + 1;
      const int64_t t_c2 = col_ends_[static_cast<size_t>(tc)];
      const double col_overlap = static_cast<double>(
          std::min(q.c2, t_c2) - std::max(q.c1, t_c1) + 1);
      const double col_span = static_cast<double>(t_c2 - t_c1 + 1);
      estimate += CellMass(tr, tc) * (row_overlap / row_span) *
                  (col_overlap / col_span);
    }
  }
  return estimate;
}

// ----------------------------------------------------------- Wave2DRangeOpt

Wave2DRangeOpt::Wave2DRangeOpt(
    int64_t rows, int64_t cols, int64_t s, int64_t t,
    std::vector<std::pair<int64_t, int64_t>> coeff_keys,
    std::vector<double> coeff_values, double predicted_sse)
    : rows_(rows),
      cols_(cols),
      s_(s),
      t_(t),
      coeff_keys_(std::move(coeff_keys)),
      coeff_values_(std::move(coeff_values)),
      predicted_sse_(predicted_sse) {
  by_key_.reserve(coeff_keys_.size());
  for (size_t i = 0; i < coeff_keys_.size(); ++i) {
    by_key_.emplace(coeff_keys_[i].first * t_ + coeff_keys_[i].second,
                    coeff_values_[i]);
  }
}

namespace {

/// Flat row-major tensor Haar coefficients of the constant-extended,
/// padded prefix grid. Outputs the padded dims into *s / *t.
Result<std::vector<double>> TensorPrefixCoefficients(const Grid2D& grid,
                                                     int64_t* s,
                                                     int64_t* t) {
  const int64_t rows = grid.rows();
  const int64_t cols = grid.cols();
  *s = static_cast<int64_t>(NextPowerOfTwo(static_cast<uint64_t>(rows) + 1));
  *t = static_cast<int64_t>(NextPowerOfTwo(static_cast<uint64_t>(cols) + 1));
  PrefixGrid prefix(grid);
  std::vector<double> flat(static_cast<size_t>(*s) *
                           static_cast<size_t>(*t));
  std::vector<double> line(static_cast<size_t>(*t));
  for (int64_t t1 = 0; t1 < *s; ++t1) {
    const int64_t cr = std::min(t1, rows);
    for (int64_t t2 = 0; t2 < *t; ++t2) {
      line[static_cast<size_t>(t2)] =
          static_cast<double>(prefix.PP(cr, std::min(t2, cols)));
    }
    RANGESYN_ASSIGN_OR_RETURN(line, HaarTransform(line));
    for (int64_t t2 = 0; t2 < *t; ++t2) {
      flat[static_cast<size_t>(t1) * static_cast<size_t>(*t) +
           static_cast<size_t>(t2)] = line[static_cast<size_t>(t2)];
    }
  }
  std::vector<double> column(static_cast<size_t>(*s));
  for (int64_t t2 = 0; t2 < *t; ++t2) {
    for (int64_t t1 = 0; t1 < *s; ++t1) {
      column[static_cast<size_t>(t1)] =
          flat[static_cast<size_t>(t1) * static_cast<size_t>(*t) +
               static_cast<size_t>(t2)];
    }
    RANGESYN_ASSIGN_OR_RETURN(column, HaarTransform(column));
    for (int64_t t1 = 0; t1 < *s; ++t1) {
      flat[static_cast<size_t>(t1) * static_cast<size_t>(*t) +
           static_cast<size_t>(t2)] = column[static_cast<size_t>(t1)];
    }
  }
  return flat;
}

}  // namespace

Result<Wave2DRangeOpt> Wave2DRangeOpt::Build(const Grid2D& grid,
                                             int64_t budget) {
  int64_t s = 0, t = 0;
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                            TensorPrefixCoefficients(grid, &s, &t));
  return FromCoefficients(grid.rows(), grid.cols(), s, t, coeffs, budget);
}

Result<Wave2DRangeOpt> Wave2DRangeOpt::FromCoefficients(
    int64_t rows, int64_t cols, int64_t s, int64_t t,
    const std::vector<double>& coeffs, int64_t budget) {
  if (budget < 1) return InvalidArgumentError("Wave2D: budget >= 1");
  if (static_cast<int64_t>(coeffs.size()) != s * t || s < 2 || t < 2) {
    return InvalidArgumentError("Wave2D: bad coefficient array shape");
  }
  // Rank coefficients with both factors non-DC; DC-factor coefficients
  // cancel in every rectangle query and are never stored.
  struct Ranked {
    int64_t u, v;
    double value;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(static_cast<size_t>((s - 1)) * static_cast<size_t>(t - 1));
  double total_energy = 0.0;
  for (int64_t u = 1; u < s; ++u) {
    for (int64_t v = 1; v < t; ++v) {
      const double c = coeffs[static_cast<size_t>(u) *
                                  static_cast<size_t>(t) +
                              static_cast<size_t>(v)];
      total_energy += c * c;
      ranked.push_back({u, v, c});
    }
  }
  const size_t keep =
      std::min<size_t>(static_cast<size_t>(budget), ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + keep, ranked.end(),
                    [](const Ranked& a, const Ranked& b) {
                      const double ma = std::fabs(a.value);
                      const double mb = std::fabs(b.value);
                      if (ma != mb) return ma > mb;
                      if (a.u != b.u) return a.u < b.u;
                      return a.v < b.v;
                    });
  std::vector<std::pair<int64_t, int64_t>> keys;
  std::vector<double> values;
  keys.reserve(keep);
  values.reserve(keep);
  double kept_energy = 0.0;
  for (size_t i = 0; i < keep; ++i) {
    keys.emplace_back(ranked[i].u, ranked[i].v);
    values.push_back(ranked[i].value);
    kept_energy += ranked[i].value * ranked[i].value;
  }
  const double predicted = static_cast<double>(s) * static_cast<double>(t) *
                           std::fmax(0.0, total_energy - kept_energy);
  return Wave2DRangeOpt(rows, cols, s, t, std::move(keys),
                        std::move(values), predicted);
}

double Wave2DRangeOpt::EstimateRect(const RectQuery& q) const {
  RANGESYN_DCHECK(ValidateRect(q, rows_, cols_).ok());
  // 4-point inclusion-exclusion on the reconstruction: for the tensor
  // basis this factorizes into axis differences, and each axis difference
  // is nonzero only for ancestors of the two endpoints.
  const int64_t x1 = q.r1 - 1, y1 = q.r2;
  const int64_t x2 = q.c1 - 1, y2 = q.c2;
  // ForEachAncestorPair visits the sorted deduplicated ancestor union of
  // each axis pair in the same order the old sorted candidate vectors
  // produced, so the accumulation order (and the float result) is
  // unchanged — but the query no longer allocates (SA-101).
  double estimate = 0.0;
  ForEachAncestorPair(s_, x1, y1, [&](int64_t u) {
    if (u == 0) return;  // DC factors cancel
    const double du = BasisValue(s_, u, y1) - BasisValue(s_, u, x1);
    // Haar basis differences cancel to an exact 0.0 outside the support.
    if (du == 0.0) return;  // lint: float-eq-ok
    ForEachAncestorPair(t_, x2, y2, [&](int64_t v) {
      if (v == 0) return;
      const auto it = by_key_.find(u * t_ + v);
      if (it == by_key_.end()) return;
      const double dv = BasisValue(t_, v, y2) - BasisValue(t_, v, x2);
      estimate += it->second * du * dv;
    });
  });
  return estimate;
}

// ------------------------------------------------- DynamicWave2DMaintainer

Result<DynamicWave2DMaintainer> DynamicWave2DMaintainer::Create(
    const Grid2D& grid) {
  int64_t s = 0, t = 0;
  RANGESYN_ASSIGN_OR_RETURN(std::vector<double> coeffs,
                            TensorPrefixCoefficients(grid, &s, &t));
  return DynamicWave2DMaintainer(grid, s, t, std::move(coeffs));
}

Status DynamicWave2DMaintainer::ApplyUpdate(int64_t r, int64_t c,
                                            int64_t delta) {
  if (r < 1 || r > rows_ || c < 1 || c > cols_) {
    return InvalidArgumentError(
        StrCat("Wave2D update: (", r, ",", c, ") outside the grid"));
  }
  const int64_t updated = grid_.at(r, c) + delta;
  if (updated < 0) {
    return FailedPreconditionError(
        StrCat("Wave2D update: count at (", r, ",", c, ") would be ",
               updated));
  }
  grid_.set(r, c, updated);
  // PP gains `delta` on the quadrant t1 >= r, t2 >= c (the padding's
  // clamped replication moves with it), which projects onto the tensor
  // products of the ancestors of r and of c.
  const double d = static_cast<double>(delta);
  for (int64_t u : AncestorIndices(s_, r)) {
    const double ru = BasisRangeSum(s_, u, r, s_ - 1);
    // Basis range sums vanish to an exact 0.0 outside the support.
    if (ru == 0.0) continue;  // lint: float-eq-ok
    for (int64_t v : AncestorIndices(t_, c)) {
      const double rv = BasisRangeSum(t_, v, c, t_ - 1);
      if (rv == 0.0) continue;  // lint: float-eq-ok (exact support test)
      coeffs_[static_cast<size_t>(u) * static_cast<size_t>(t_) +
              static_cast<size_t>(v)] += d * ru * rv;
    }
  }
  ++updates_;
  return OkStatus();
}

Result<Wave2DRangeOpt> DynamicWave2DMaintainer::Snapshot(
    int64_t budget) const {
  return Wave2DRangeOpt::FromCoefficients(rows_, cols_, s_, t_, coeffs_,
                                          budget);
}

// ----------------------------------------------------------------- metrics

Result<double> RectWorkloadSse(const Grid2D& grid,
                               const RectEstimator& estimator,
                               const std::vector<RectQuery>& queries) {
  if (estimator.rows() != grid.rows() || estimator.cols() != grid.cols()) {
    return InvalidArgumentError("RectWorkloadSse: shape mismatch");
  }
  PrefixGrid prefix(grid);
  double sse = 0.0;
  for (const RectQuery& q : queries) {
    RANGESYN_RETURN_IF_ERROR(ValidateRect(q, grid.rows(), grid.cols()));
    const double err = static_cast<double>(prefix.RectSum(q)) -
                       estimator.EstimateRect(q);
    sse += err * err;
  }
  return sse;
}

Result<double> AllRectanglesSse(const Grid2D& grid,
                                const RectEstimator& estimator) {
  return RectWorkloadSse(grid, estimator,
                         AllRectangles(grid.rows(), grid.cols()));
}

}  // namespace rangesyn
